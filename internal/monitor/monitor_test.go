package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/probe"
)

func TestBucketBoundsRoundTrip(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		lo, hi := bucketLo(i), bucketHi(i)
		if bucketIndex(lo) != i {
			t.Fatalf("bucket %d: lo %d maps to bucket %d", i, lo, bucketIndex(lo))
		}
		if bucketIndex(hi) != i {
			t.Fatalf("bucket %d: hi %d maps to bucket %d", i, hi, bucketIndex(hi))
		}
		if i > 0 && bucketLo(i) != bucketHi(i-1)+1 {
			t.Fatalf("bucket %d: gap between %d and %d", i, bucketHi(i-1), bucketLo(i))
		}
	}
	if got := bucketIndex(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("MaxUint64 maps to bucket %d, want %d", got, NumBuckets-1)
	}
}

func TestHistogramExactQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples of the service times the engine actually charges.
	for i := 0; i < 90; i++ {
		h.Record(1) // t1
	}
	for i := 0; i < 8; i++ {
		h.Record(4) // t2
	}
	h.Record(20) // tm
	h.Record(20)

	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := uint64(90*1 + 8*4 + 2*20); h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != 20 {
		t.Fatalf("max = %d", h.Max())
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 1}, {0.9, 1}, {0.95, 4}, {0.98, 4}, {0.99, 20}, {1.0, 20},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramTailClampedToMax(t *testing.T) {
	var h Histogram
	h.Record(100) // bucket [64,127]
	// p99 of a single sample must be the sample, not the bucket upper bound.
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("Quantile(0.99) = %g, want 100", got)
	}
	if got := h.Quantile(0.01); got < 64 || got > 100 {
		t.Fatalf("Quantile(0.01) = %g, outside [64,100]", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(1)
	a.Record(2)
	b.Record(300)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 303 || a.Max() != 300 {
		t.Fatalf("merge: count=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
	var buckets int
	a.ForEachBucket(func(lo, hi, n uint64) { buckets++ })
	if buckets != 3 {
		t.Fatalf("non-empty buckets = %d, want 3", buckets)
	}
}

func TestLatenciesNilSafe(t *testing.T) {
	var l *Latencies
	l.Record(0, LatAccess, 5) // must not panic
	if l.CPUs() != 0 {
		t.Fatal("nil CPUs")
	}
	if l.Hist(0, LatAccess) != nil {
		t.Fatal("nil Hist must be nil")
	}
	if h := l.Aggregate(LatAccess); h.Count() != 0 {
		t.Fatal("nil Aggregate must be empty")
	}
	if l.Clone() != nil {
		t.Fatal("nil Clone must be nil")
	}
}

func TestLatenciesRecordAndAggregate(t *testing.T) {
	l := NewLatencies(2)
	l.Record(0, LatAccess, 1)
	l.Record(1, LatAccess, 4)
	l.Record(1, LatBusWait, 7)
	l.Record(3, LatWBDrain, 9) // beyond pre-size: grows

	if l.CPUs() != 4 {
		t.Fatalf("CPUs = %d, want 4", l.CPUs())
	}
	if h := l.Hist(1, LatAccess); h == nil || h.Count() != 1 || h.Sum() != 4 {
		t.Fatal("Hist(1, access) wrong")
	}
	agg := l.Aggregate(LatAccess)
	if agg.Count() != 2 || agg.Sum() != 5 {
		t.Fatalf("aggregate access: count=%d sum=%d", agg.Count(), agg.Sum())
	}

	c := l.Clone()
	c.Record(0, LatAccess, 100)
	if after := l.Aggregate(LatAccess); after.Count() != 2 {
		t.Fatal("Clone must not share storage")
	}
}

func TestLatencyKindStrings(t *testing.T) {
	want := []string{"access", "bus-wait", "wb-drain", "wb-stall"}
	for k := LatencyKind(0); k < NumLatencyKinds; k++ {
		if k.String() != want[k] {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), want[k])
		}
	}
	if !strings.Contains(LatencyKind(99).String(), "99") {
		t.Fatal("out-of-range String must include the value")
	}
}

func testSnapshot() *audit.Snapshot {
	return &audit.Snapshot{
		Organization: "vr",
		Refs:         1000,
		CPUs: []*audit.CPUSnapshot{{
			CPU: 0, Virtual: true, Inclusive: true,
			L1Block: 16, L2Block: 32,
			RSets: 2, RWays: 2,
			VCaches: []audit.VCacheSnapshot{{
				Cache: 0, Sets: 2, Ways: 2,
				Lines: []audit.VLine{
					{Set: 0, Way: 0}, {Set: 0, Way: 1}, {Set: 1, Way: 0},
				},
			}},
			RLines: []audit.RLine{
				{Set: 0, Way: 0, State: audit.StatePrivate},
				{Set: 1, Way: 0, State: "shared"},
			},
		}},
	}
}

func TestOccupancy(t *testing.T) {
	if Occupancy(nil) != nil {
		t.Fatal("nil snapshot must yield nil")
	}
	occ := Occupancy(testSnapshot())
	if len(occ) != 2 {
		t.Fatalf("summaries = %d, want 2 (V0, R)", len(occ))
	}
	v0 := occ[0]
	if v0.Level != "V0" || v0.Lines != 3 || v0.FullSets != 1 || v0.MeanSet != 1.5 {
		t.Fatalf("V0 summary wrong: %+v", v0)
	}
	r := occ[1]
	if r.Level != "R" || r.Lines != 2 || r.FullSets != 0 || r.MeanSet != 1.0 {
		t.Fatalf("R summary wrong: %+v", r)
	}
}

func TestOccupancyNoInclusionLevels(t *testing.T) {
	snap := &audit.Snapshot{CPUs: []*audit.CPUSnapshot{{
		CPU: 1, L1Sets: 4, L1Ways: 1, RSets: 4, RWays: 2,
		L1Lines: []audit.L1Line{{Set: 0, Way: 0}, {Set: 2, Way: 0}},
	}}}
	occ := Occupancy(snap)
	if len(occ) != 2 || occ[0].Level != "L1" || occ[1].Level != "R" {
		t.Fatalf("levels wrong: %+v", occ)
	}
	if occ[0].Lines != 2 || occ[0].FullSets != 2 {
		t.Fatalf("L1 summary wrong: %+v", occ[0])
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Before any Publish: metrics is empty but OK, snapshot/state are 503.
	if code, _ := get(t, base+"/state"); code != http.StatusServiceUnavailable {
		t.Fatalf("/state before publish: %d", code)
	}
	if code, _ := get(t, base+"/snapshot"); code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot before publish: %d", code)
	}

	lat := NewLatencies(1)
	for i := 0; i < 100; i++ {
		lat.Record(0, LatAccess, 1)
	}
	lat.Record(0, LatBusWait, 12)
	snap := testSnapshot()
	var sb strings.Builder
	if err := snap.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	srv.Publish(State{
		Refs:   1000,
		Events: map[string]uint64{"l1-hit": 900, "l1-miss": 100},
		Window: &probe.WindowMetrics{
			Index: 3, L1Hits: 90, L1Misses: 10, BusTxns: 12,
			FirstRef: 900, LastRef: 999,
		},
		Latencies:  lat.Clone(),
		Occupancy:  Occupancy(snap),
		Audits:     4,
		Violations: 0,
		Snapshot:   []byte(sb.String()),
	})

	code, metrics := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"vrsim_references 1000",
		`vrsim_events_total{kind="l1-hit"} 900`,
		`vrsim_latency_cycles{kind="access",quantile="0.5"} 1`,
		`vrsim_latency_cycles_count{kind="access"} 100`,
		`vrsim_latency_cycles{kind="bus-wait",quantile="0.99"} 12`,
		`vrsim_occupancy_lines{cpu="0",level="V0"} 3`,
		"vrsim_audit_audits_total 4",
		"vrsim_audit_violations_total 0",
		"vrsim_window_l1_hit_ratio 0.9",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	code, body := get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot: %d", code)
	}
	if _, err := audit.ParseJSON(strings.NewReader(body)); err != nil {
		t.Fatalf("/snapshot not a parseable snapshot: %v", err)
	}

	code, body = get(t, base+"/state")
	if code != http.StatusOK {
		t.Fatalf("/state: %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/state not JSON: %v", err)
	}
	if st["references"] != float64(1000) {
		t.Fatalf("/state references = %v", st["references"])
	}

	if code, body := get(t, base+"/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "vrsim") {
		t.Fatalf("/debug/vars: %d, vrsim published = %v", code,
			strings.Contains(body, "vrsim"))
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if code, body := get(t, base+"/"); code != http.StatusOK ||
		!strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d", code)
	}
	if code, _ := get(t, base+"/no-such"); code != http.StatusNotFound {
		t.Fatal("unknown path must 404")
	}
}

func TestMetricsSortedDeterministic(t *testing.T) {
	srv, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Publish(State{
		Refs:   1,
		Events: map[string]uint64{"b": 2, "a": 1, "c": 3},
	})
	base := "http://" + srv.Addr()
	_, first := get(t, base+"/metrics")
	for i := 0; i < 5; i++ {
		if _, again := get(t, base+"/metrics"); again != first {
			t.Fatalf("iteration %d: /metrics output not deterministic", i)
		}
	}
	ia := strings.Index(first, `kind="a"`)
	ib := strings.Index(first, `kind="b"`)
	ic := strings.Index(first, `kind="c"`)
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("event keys not sorted: a=%d b=%d c=%d", ia, ib, ic)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i & 0xff))
	}
	if h.Count() == 0 {
		b.Fatal("no samples")
	}
	_ = fmt.Sprintf("%d", h.Sum())
}
