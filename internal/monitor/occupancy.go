package monitor

import (
	"fmt"

	"repro/internal/audit"
)

// OccupancySummary describes how full one cache's sets are at snapshot
// time: total resident lines, the mean per set, and how many sets are
// completely full (replacement pressure).
type OccupancySummary struct {
	CPU      int     `json:"cpu"`
	Level    string  `json:"level"` // "V0", "V1", "L1", "R"
	Sets     int     `json:"sets"`
	Ways     int     `json:"ways"`
	Lines    int     `json:"lines"`
	MeanSet  float64 `json:"meanPerSet"`
	FullSets int     `json:"fullSets"`
}

func summarize(cpu int, level string, sets, ways int, lineSets []int) OccupancySummary {
	s := OccupancySummary{CPU: cpu, Level: level, Sets: sets, Ways: ways, Lines: len(lineSets)}
	if sets <= 0 || ways <= 0 {
		return s
	}
	perSet := make([]int, sets)
	for _, set := range lineSets {
		if set >= 0 && set < sets {
			perSet[set]++
		}
	}
	for _, n := range perSet {
		if n >= ways {
			s.FullSets++
		}
	}
	s.MeanSet = float64(len(lineSets)) / float64(sets)
	return s
}

// Occupancy computes per-cache occupancy summaries from an audit snapshot —
// one entry per cache per CPU, in CPU order.
func Occupancy(snap *audit.Snapshot) []OccupancySummary {
	if snap == nil {
		return nil
	}
	var out []OccupancySummary
	for _, cs := range snap.CPUs {
		for vi := range cs.VCaches {
			vc := &cs.VCaches[vi]
			sets := make([]int, 0, len(vc.Lines))
			for i := range vc.Lines {
				sets = append(sets, vc.Lines[i].Set)
			}
			out = append(out, summarize(cs.CPU, fmt.Sprintf("V%d", vc.Cache),
				vc.Sets, vc.Ways, sets))
		}
		if len(cs.L1Lines) > 0 || cs.L1Sets > 0 {
			sets := make([]int, 0, len(cs.L1Lines))
			for i := range cs.L1Lines {
				sets = append(sets, cs.L1Lines[i].Set)
			}
			out = append(out, summarize(cs.CPU, "L1", cs.L1Sets, cs.L1Ways, sets))
		}
		rsets := make([]int, 0, len(cs.RLines))
		for i := range cs.RLines {
			rsets = append(rsets, cs.RLines[i].Set)
		}
		out = append(out, summarize(cs.CPU, "R", cs.RSets, cs.RWays, rsets))
	}
	return out
}
