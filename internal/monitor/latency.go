package monitor

import "fmt"

// LatencyKind names one measured per-reference latency distribution.
type LatencyKind int

// The distributions the cycle engine feeds (see cycles.Engine.SetLatencies).
const (
	// LatAccess is the per-reference service time (t1, t2 or tm).
	LatAccess LatencyKind = iota
	// LatBusWait is the bus queueing delay charged to a requester per timed
	// foreground transaction (0 when the bus was free).
	LatBusWait
	// LatWBDrain is a background write-back's request-to-clear time on the
	// bus: queueing plus occupancy.
	LatWBDrain
	// LatWBStall is the processor stall on a buffer-full push or coherence
	// flush, waiting for the pending write-back to clear the bus.
	LatWBStall

	// NumLatencyKinds bounds the enum for fixed per-CPU tables.
	NumLatencyKinds
)

var latencyNames = [NumLatencyKinds]string{
	LatAccess:  "access",
	LatBusWait: "bus-wait",
	LatWBDrain: "wb-drain",
	LatWBStall: "wb-stall",
}

// String returns the kind's stable label (used in reports and exposition).
func (k LatencyKind) String() string {
	if k < 0 || k >= NumLatencyKinds {
		return fmt.Sprintf("LatencyKind(%d)", int(k))
	}
	return latencyNames[k]
}

// latencySet is one CPU's histograms, a fixed array so the whole set is one
// allocation and copies by assignment.
type latencySet [NumLatencyKinds]Histogram

// Latencies holds per-CPU latency histograms. A nil *Latencies is a valid
// no-op receiver (the repo's nil-check pattern): the cycle engine records
// unconditionally and pays one branch when distributions are off.
type Latencies struct {
	cpus []latencySet
}

// NewLatencies pre-sizes a collector for the given CPU count. Recording
// against a larger id still works (the table grows), but pre-sizing keeps
// the hot path allocation-free.
func NewLatencies(cpus int) *Latencies {
	if cpus < 1 {
		cpus = 1
	}
	return &Latencies{cpus: make([]latencySet, cpus)}
}

// Record adds one sample for (cpu, kind). Nil-safe and allocation-free for
// ids within the pre-sized range.
func (l *Latencies) Record(cpu int, k LatencyKind, v uint64) {
	if l == nil {
		return
	}
	if cpu < 0 {
		cpu = 0
	}
	for cpu >= len(l.cpus) {
		l.cpus = append(l.cpus, latencySet{})
	}
	l.cpus[cpu][k].Record(v)
}

// CPUs returns the number of per-CPU slots.
func (l *Latencies) CPUs() int {
	if l == nil {
		return 0
	}
	return len(l.cpus)
}

// Hist returns the histogram for (cpu, kind), nil when out of range.
func (l *Latencies) Hist(cpu int, k LatencyKind) *Histogram {
	if l == nil || cpu < 0 || cpu >= len(l.cpus) || k < 0 || k >= NumLatencyKinds {
		return nil
	}
	return &l.cpus[cpu][k]
}

// Aggregate returns the machine-wide histogram for one kind (a merged
// copy).
func (l *Latencies) Aggregate(k LatencyKind) Histogram {
	var out Histogram
	if l == nil {
		return out
	}
	for i := range l.cpus {
		out.Merge(&l.cpus[i][k])
	}
	return out
}

// Clone deep-copies the collector — the publish path hands immutable copies
// to the HTTP server so handlers never race the simulation.
func (l *Latencies) Clone() *Latencies {
	if l == nil {
		return nil
	}
	c := &Latencies{cpus: make([]latencySet, len(l.cpus))}
	copy(c.cpus, l.cpus)
	return c
}
