// Package monitor is the simulator's live introspection layer: fixed-bucket
// latency histograms fed by the cycle engine (p50/p95/p99 of access,
// bus-wait and write-back-drain cycles), per-set occupancy summaries
// computed from audit snapshots, and an optional HTTP server exposing
// windowed metrics, audit results and Prometheus-style text while a run is
// in flight.
//
// Histograms follow the hot path's zero-allocation discipline: a Histogram
// is a value type over fixed arrays, Record is branch-and-increment only,
// and the per-CPU sets are pre-sized, so enabling distributions adds no
// per-reference allocation (alloc_test.go enforces this).
package monitor

import (
	"math"
	"math/bits"
)

// Bucketing: cycle latencies cluster at small values (t1 = 1, t2 = 4,
// tm = 20) with a contention tail, so values below exactBuckets get one
// bucket each — exact quantiles where precision matters — and the tail
// falls into one bucket per power of two.
const (
	exactBuckets = 64
	logBuckets   = 58 // bit lengths 7..64: everything up to 1<<64 - 1
	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = exactBuckets + logBuckets
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < exactBuckets {
		return int(v)
	}
	return exactBuckets + bits.Len64(v) - 7
}

// bucketLo returns the smallest value bucket i holds.
func bucketLo(i int) uint64 {
	if i < exactBuckets {
		return uint64(i)
	}
	return 1 << (i - exactBuckets + 6)
}

// bucketHi returns the largest value bucket i holds.
func bucketHi(i int) uint64 {
	if i < exactBuckets {
		return uint64(i)
	}
	return bucketLo(i)<<1 - 1
}

// Histogram is a fixed-bucket distribution of uint64 samples (cycle
// counts). It is a value type: assignment copies it, the zero value is
// ready to use, and Record never allocates.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank: exact
// for samples below exactBuckets, linearly interpolated within the
// power-of-two tail buckets.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		n := h.buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		if i < exactBuckets {
			return float64(i)
		}
		lo, hi := bucketLo(i), bucketHi(i)
		if hi > h.max {
			hi = h.max // the tail bucket cannot extend past the largest sample
		}
		pos := float64(rank-(cum-n)) / float64(n)
		return float64(lo) + pos*float64(hi-lo)
	}
	return float64(h.max)
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// ForEachBucket visits every non-empty bucket in value order with its
// inclusive bounds (exposition formats want the raw distribution).
func (h *Histogram) ForEachBucket(fn func(lo, hi, count uint64)) {
	for i := 0; i < NumBuckets; i++ {
		if h.buckets[i] != 0 {
			fn(bucketLo(i), bucketHi(i), h.buckets[i])
		}
	}
}
