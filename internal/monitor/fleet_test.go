package monitor

import (
	"strings"
	"testing"
)

func TestWriteFleetMetrics(t *testing.T) {
	var sb strings.Builder
	WriteFleetMetrics(&sb, FleetStats{
		Workers:    4,
		QueueDepth: 2,
		Submitted:  7,
		Done:       3,
		Failed:     1,
		Canceled:   1,
		Resumed:    2,
		Jobs: []FleetJob{
			{ID: "j000001", Kind: "run", State: "done", Records: 10, Refs: 10, TotalRefs: 10},
			{ID: "j000002", Kind: "sweep", State: "running", Records: 5, Refs: 4, TotalRefs: 10},
			{ID: "j000003", Kind: "autotune", State: "queued"},
		},
	})
	out := sb.String()
	for _, want := range []string{
		"vrsimd_workers 4",
		"vrsimd_queue_depth 2",
		`vrsimd_jobs_lifecycle_total{event="submitted"} 7`,
		`vrsimd_jobs_lifecycle_total{event="resumed"} 2`,
		`vrsimd_jobs{state="done"} 1`,
		`vrsimd_jobs{state="queued"} 1`,
		`vrsimd_jobs{state="running"} 1`,
		`vrsimd_job_records{id="j000002",kind="sweep"} 5`,
		`vrsimd_job_references{id="j000002",kind="sweep"} 4`,
		`vrsimd_job_total_references{id="j000002",kind="sweep"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Terminal jobs must not emit per-job series (unbounded cardinality).
	if strings.Contains(out, `vrsimd_job_records{id="j000001"`) {
		t.Error("terminal job emitted a per-job gauge")
	}
}

func TestWriteFleetMetricsEmpty(t *testing.T) {
	var sb strings.Builder
	WriteFleetMetrics(&sb, FleetStats{Workers: 1})
	out := sb.String()
	if !strings.Contains(out, "vrsimd_workers 1") {
		t.Error("missing workers gauge")
	}
	if strings.Contains(out, "vrsimd_job_records") {
		t.Error("per-job series with no jobs")
	}
}
