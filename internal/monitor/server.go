package monitor

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"repro/internal/probe"
)

// State is one published view of a running simulation. The simulation
// goroutine builds a State from immutable copies (cloned histograms,
// marshaled snapshot bytes) and hands it to Publish; HTTP handlers only
// ever read published States, so introspection never races the hot path.
type State struct {
	Refs      uint64               `json:"references"`
	Events    map[string]uint64    `json:"events,omitempty"`
	Window    *probe.WindowMetrics `json:"window,omitempty"`
	Latencies *Latencies           `json:"-"`
	Occupancy []OccupancySummary   `json:"occupancy,omitempty"`

	Audits     uint64 `json:"audits,omitempty"`
	Violations uint64 `json:"violations,omitempty"`
	// Snapshot is the latest audit snapshot, already marshaled to JSON.
	Snapshot []byte `json:"-"`

	// Cycle-attribution metrics published by the telemetry layer (plain
	// local types: monitor must stay importable by the packages telemetry
	// builds on).
	Blame       []BlameMetric `json:"blame,omitempty"`
	TopK        []HeavyHitter `json:"topK,omitempty"`
	FlightDumps uint64        `json:"flightDumps,omitempty"`
}

// BlameMetric is one mechanism's share of the measured cycles, as exported
// to Prometheus (vrsim_attr_cycles_total).
type BlameMetric struct {
	Mechanism string `json:"mechanism"`
	Cycles    uint64 `json:"cycles"`
}

// HeavyHitter is one entry of a heavy-hitter sketch, as exported to
// Prometheus (vrsim_attr_top_weight).
type HeavyHitter struct {
	Dimension string `json:"dimension"`
	Key       string `json:"key"`
	Weight    uint64 `json:"weight"`
}

// expvar's registry is process-global and rejects duplicate names, so the
// published state lives in one package-level slot no matter how many
// servers a process (or test) starts.
var (
	expvarMu    sync.Mutex
	expvarSt    *State
	expvarSetup sync.Once
)

func publishExpvar(st *State) {
	expvarSetup.Do(func() {
		expvar.Publish("vrsim", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarSt
		}))
	})
	expvarMu.Lock()
	expvarSt = st
	expvarMu.Unlock()
}

// Server exposes a running simulation over HTTP: a Prometheus-style text
// exposition at /metrics, the latest audit snapshot at /snapshot, the raw
// published state at /state, plus the standard expvar and pprof debug
// endpoints.
type Server struct {
	mu       sync.Mutex
	state    *State
	flightFn func() ([]byte, error)

	ln  net.Listener
	srv *http.Server
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// until Close. The returned server has no state until the first Publish.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/flightrec", s.handleFlightrec)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Publish replaces the served state. The caller must not mutate st or
// anything it references afterwards; build it from clones.
func (s *Server) Publish(st State) {
	s.mu.Lock()
	s.state = &st
	s.mu.Unlock()
	publishExpvar(&st)
}

// SetFlightDump installs the on-demand flight-recorder dump used by the
// /flightrec endpoint. The function is called on an HTTP goroutine and must
// be safe for that (the telemetry recorder's RequestDump is).
func (s *Server) SetFlightDump(fn func() ([]byte, error)) {
	s.mu.Lock()
	s.flightFn = fn
	s.mu.Unlock()
}

func (s *Server) handleFlightrec(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fn := s.flightFn
	s.mu.Unlock()
	if fn == nil {
		http.Error(w, "no flight recorder attached (-flightrec)", http.StatusServiceUnavailable)
		return
	}
	data, err := fn()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) snapshotState() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `vrsim monitor
/metrics     Prometheus-style text exposition
/snapshot    latest audit state snapshot (JSON)
/state       latest published state (JSON)
/flightrec   on-demand flight-recorder bundle (JSON)
/debug/vars  expvar
/debug/pprof profiling
`)
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	st := s.snapshotState()
	if st == nil {
		http.Error(w, "no state published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // best-effort write to a live client
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	st := s.snapshotState()
	if st == nil || len(st.Snapshot) == 0 {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(st.Snapshot) //nolint:errcheck
}

// quantiles exposed per latency kind.
var exportQuantiles = []float64{0.5, 0.95, 0.99}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.snapshotState()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if st == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE vrsim_references counter\nvrsim_references %d\n", st.Refs)
	if len(st.Events) > 0 {
		keys := make([]string, 0, len(st.Events))
		for k := range st.Events {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "# TYPE vrsim_events_total counter\n")
		for _, k := range keys {
			fmt.Fprintf(w, "vrsim_events_total{kind=%q} %d\n", k, st.Events[k])
		}
	}
	if win := st.Window; win != nil {
		fmt.Fprint(w, "# TYPE vrsim_window_l1_hit_ratio gauge\n")
		fmt.Fprintf(w, "vrsim_window_l1_hit_ratio %g\n", win.L1Ratio())
		fmt.Fprint(w, "# TYPE vrsim_window_l2_hit_ratio gauge\n")
		fmt.Fprintf(w, "vrsim_window_l2_hit_ratio %g\n", win.L2Ratio())
		fmt.Fprint(w, "# TYPE vrsim_window_synonym_rate gauge\n")
		fmt.Fprintf(w, "vrsim_window_synonym_rate %g\n", win.SynonymRate())
		fmt.Fprint(w, "# TYPE vrsim_window_bus_txns_per_ref gauge\n")
		fmt.Fprintf(w, "vrsim_window_bus_txns_per_ref %g\n", win.BusOccupancy())
	}
	if l := st.Latencies; l != nil {
		fmt.Fprint(w, "# TYPE vrsim_latency_cycles summary\n")
		for k := LatencyKind(0); k < NumLatencyKinds; k++ {
			h := l.Aggregate(k)
			if h.Count() == 0 {
				continue
			}
			for _, q := range exportQuantiles {
				fmt.Fprintf(w, "vrsim_latency_cycles{kind=%q,quantile=\"%g\"} %g\n",
					k.String(), q, h.Quantile(q))
			}
			fmt.Fprintf(w, "vrsim_latency_cycles_sum{kind=%q} %d\n", k.String(), h.Sum())
			fmt.Fprintf(w, "vrsim_latency_cycles_count{kind=%q} %d\n", k.String(), h.Count())
		}
	}
	if len(st.Occupancy) > 0 {
		fmt.Fprint(w, "# TYPE vrsim_occupancy_lines gauge\n")
		for _, o := range st.Occupancy {
			fmt.Fprintf(w, "vrsim_occupancy_lines{cpu=\"%d\",level=%q} %d\n",
				o.CPU, o.Level, o.Lines)
		}
		fmt.Fprint(w, "# TYPE vrsim_occupancy_full_sets gauge\n")
		for _, o := range st.Occupancy {
			fmt.Fprintf(w, "vrsim_occupancy_full_sets{cpu=\"%d\",level=%q} %d\n",
				o.CPU, o.Level, o.FullSets)
		}
	}
	fmt.Fprintf(w, "# TYPE vrsim_audit_audits_total counter\nvrsim_audit_audits_total %d\n", st.Audits)
	fmt.Fprintf(w, "# TYPE vrsim_audit_violations_total counter\nvrsim_audit_violations_total %d\n", st.Violations)
	if len(st.Blame) > 0 {
		fmt.Fprint(w, "# TYPE vrsim_attr_cycles_total counter\n")
		for _, b := range st.Blame {
			fmt.Fprintf(w, "vrsim_attr_cycles_total{mechanism=%q} %d\n", b.Mechanism, b.Cycles)
		}
	}
	if len(st.TopK) > 0 {
		fmt.Fprint(w, "# TYPE vrsim_attr_top_weight gauge\n")
		for _, h := range st.TopK {
			fmt.Fprintf(w, "vrsim_attr_top_weight{dimension=%q,key=%q} %d\n",
				h.Dimension, h.Key, h.Weight)
		}
	}
	fmt.Fprintf(w, "# TYPE vrsim_flightrec_dumps_total counter\nvrsim_flightrec_dumps_total %d\n", st.FlightDumps)
}
