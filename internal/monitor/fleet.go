package monitor

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// FleetJob is one job's exported gauge set, as published by the job server
// (internal/jobs). The monitor package owns the exposition format so the
// fleet shares one Prometheus vocabulary with the per-run server above.
type FleetJob struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Records   uint64 `json:"records"`
	Refs      uint64 `json:"references"`
	TotalRefs uint64 `json:"totalRefs"`
}

// FleetStats is a point-in-time view of the job fleet: pool shape, queue
// depth, monotonic lifecycle counters and the per-job gauges.
type FleetStats struct {
	Workers    int
	QueueDepth int

	Submitted uint64
	Done      uint64
	Failed    uint64
	Canceled  uint64
	Resumed   uint64

	// QueueMillis and RunMillis, when set, are the fleet's job queue-wait
	// and run-time distributions in milliseconds. They export as the
	// Prometheus histograms vrsimd_job_queue_seconds and
	// vrsimd_job_run_seconds (bucket bounds converted to seconds).
	QueueMillis *Histogram
	RunMillis   *Histogram

	Jobs []FleetJob
}

// WriteFleetMetrics renders fleet-level and per-job Prometheus metrics in
// the text exposition format. Per-job series are emitted for non-terminal
// jobs only (terminal jobs would grow the series set without bound); the
// lifecycle counters carry the totals.
func WriteFleetMetrics(w io.Writer, fs FleetStats) {
	fmt.Fprintf(w, "# TYPE vrsimd_workers gauge\nvrsimd_workers %d\n", fs.Workers)
	fmt.Fprintf(w, "# TYPE vrsimd_queue_depth gauge\nvrsimd_queue_depth %d\n", fs.QueueDepth)
	fmt.Fprint(w, "# TYPE vrsimd_jobs_lifecycle_total counter\n")
	for _, c := range []struct {
		event string
		n     uint64
	}{
		{"submitted", fs.Submitted}, {"done", fs.Done},
		{"failed", fs.Failed}, {"canceled", fs.Canceled}, {"resumed", fs.Resumed},
	} {
		fmt.Fprintf(w, "vrsimd_jobs_lifecycle_total{event=%q} %d\n", c.event, c.n)
	}

	writeLatencyHistogram(w, "vrsimd_job_queue_seconds", fs.QueueMillis)
	writeLatencyHistogram(w, "vrsimd_job_run_seconds", fs.RunMillis)

	byState := map[string]int{}
	for _, j := range fs.Jobs {
		byState[j.State]++
	}
	states := make([]string, 0, len(byState))
	for s := range byState {
		states = append(states, s)
	}
	sort.Strings(states)
	fmt.Fprint(w, "# TYPE vrsimd_jobs gauge\n")
	for _, s := range states {
		fmt.Fprintf(w, "vrsimd_jobs{state=%q} %d\n", s, byState[s])
	}

	var active []FleetJob
	for _, j := range fs.Jobs {
		if j.State == "queued" || j.State == "running" {
			active = append(active, j)
		}
	}
	if len(active) == 0 {
		return
	}
	fmt.Fprint(w, "# TYPE vrsimd_job_records gauge\n")
	for _, j := range active {
		fmt.Fprintf(w, "vrsimd_job_records{id=%q,kind=%q} %d\n", j.ID, j.Kind, j.Records)
	}
	fmt.Fprint(w, "# TYPE vrsimd_job_references gauge\n")
	for _, j := range active {
		fmt.Fprintf(w, "vrsimd_job_references{id=%q,kind=%q} %d\n", j.ID, j.Kind, j.Refs)
	}
	fmt.Fprint(w, "# TYPE vrsimd_job_total_references gauge\n")
	for _, j := range active {
		fmt.Fprintf(w, "vrsimd_job_total_references{id=%q,kind=%q} %d\n", j.ID, j.Kind, j.TotalRefs)
	}
}

// writeLatencyHistogram renders one millisecond-valued Histogram as a
// Prometheus histogram in seconds: cumulative buckets over the occupied
// range (le = the bucket's inclusive upper bound / 1000), then +Inf, sum
// and count. Nil histograms are skipped.
func writeLatencyHistogram(w io.Writer, name string, h *Histogram) {
	if h == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	h.ForEachBucket(func(_, hi, count uint64) {
		cum += count
		le := strconv.FormatFloat(float64(hi)/1000, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	})
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum())/1000)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}
