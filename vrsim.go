// Package vrsim is the public API of a trace-driven simulator for the
// two-level virtual-real cache hierarchy of Wang, Baer and Levy (ISCA
// 1989): a small, fast, virtually-addressed first-level cache backed by a
// large physically-addressed second-level cache that enforces inclusion,
// resolves virtual-address synonyms through reverse-translation pointers,
// and shields the first level from irrelevant multiprocessor cache
// coherence traffic.
//
// # Building a machine
//
// A System is a shared-bus multiprocessor of identical two-level
// hierarchies:
//
//	sys, err := vrsim.New(vrsim.Config{
//		CPUs:         4,
//		Organization: vrsim.VR,
//		L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
//		L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
//	})
//
// Four organizations are available: VR (the paper's proposal), the two
// physically-addressed baselines it is evaluated against, RRInclusion and
// RRNoInclusion, and VRRLT, a V-R variant that resolves synonyms through a
// bounded reverse-lookup table instead of unbounded per-subentry
// v-pointers. Orthogonally, Config.L1WriteThrough selects the Section 2
// write-through first level, and Config.VictimEntries inserts a small
// victim cache between the levels of any organization.
//
// # Driving it
//
// Any Reader of trace records drives the machine; the tracegen-backed
// workloads reproduce the paper's three ATUM-like traces:
//
//	wl := vrsim.PopsWorkload()
//	err := vrsim.RunWorkload(sys, wl)
//	agg := sys.Aggregate() // h1, h2, per-kind hit ratios
//
// Per-CPU statistics (synonym resolutions, coherence messages reaching the
// first level, write-backs, inclusion invalidations, ...) are available
// through System.Stats.
//
// # Performance model
//
// The paper's access-time equation and its Figure 4-6 analyses live in the
// timemodel helpers re-exported here (AccessTime, Curve, Crossover).
package vrsim

import (
	"io"

	"repro/internal/addr"
	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/monitor"
	"repro/internal/probe"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// Geometry describes a cache's shape: total size, block size and
// associativity, all powers of two.
type Geometry = cache.Geometry

// Policy selects a cache level's replacement policy (Config.L1Policy and
// Config.L2Policy); the zero value is LRU.
type Policy = cache.Policy

// Replacement policies.
const (
	LRU    = cache.LRU
	FIFO   = cache.FIFO
	Random = cache.Random
)

// Organization selects the cache organization of every CPU in a System.
type Organization = system.Organization

// The organizations the paper compares.
const (
	// VR is the paper's proposal: virtually-addressed L1, physically
	// addressed L2 with inclusion, synonym resolution and shielding.
	VR = system.VR
	// RRInclusion is the physically-addressed baseline with inclusion.
	RRInclusion = system.RRInclusion
	// RRNoInclusion is the physically-addressed baseline whose levels
	// replace independently; every bus transaction probes the L1.
	RRNoInclusion = system.RRNoInclusion
	// VRRLT is the V-R organization with synonym resolution through a
	// bounded reverse-lookup synonym table (Config.RLTEntries) instead of
	// per-subentry v-pointers.
	VRRLT = system.VRRLT
)

// Config describes a machine; see system.Config for field documentation.
type Config = system.Config

// System is an assembled shared-bus multiprocessor.
type System = system.System

// New builds a machine.
func New(cfg Config) (*System, error) { return system.New(cfg) }

// Stats is the per-CPU counter set exposed by System.Stats.
type Stats = core.Stats

// Protocol selects the bus coherence protocol.
type Protocol = core.Protocol

// Coherence protocols: the paper's write-invalidate protocol (default) and
// a Firefly-style write-update alternative demonstrating the paper's
// remark that the organization works for other protocols too.
const (
	WriteInvalidate = core.WriteInvalidate
	WriteUpdate     = core.WriteUpdate
)

// AccessResult reports what one reference did (hit level, synonym
// resolution, physical address, data token).
type AccessResult = core.AccessResult

// Ref is one trace record; Reader is a stream of them.
type (
	Ref    = trace.Ref
	Reader = trace.Reader
)

// Address and process-identifier types used in trace records and results.
type (
	VAddr = addr.VAddr
	PAddr = addr.PAddr
	PID   = addr.PID
)

// DMA is an I/O device on the bus (see System.NewDMA): it reads and writes
// memory by physical address through the ordinary coherence protocol,
// demonstrating the paper's point that a physically-addressed second level
// makes device traffic need no reverse translation.
type DMA = system.DMA

// Signal tracing: a Tracer attached through Config.Tracer observes every
// V-cache/R-cache interface signal of the paper's Table 4 as the
// controllers raise them.
type (
	Signal     = core.Signal
	SignalKind = core.SignalKind
	Tracer     = core.Tracer
	TracerFunc = core.TracerFunc
)

// Trace record kinds.
const (
	IFetch    = trace.IFetch
	Read      = trace.Read
	Write     = trace.Write
	CtxSwitch = trace.CtxSwitch
)

// WorkloadConfig describes a synthetic multiprocessor workload.
type WorkloadConfig = tracegen.Config

// Workload generates the trace of a WorkloadConfig.
type Workload = tracegen.Generator

// NewWorkload builds a workload generator.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return tracegen.New(cfg) }

// The paper's three trace models (Table 5 characteristics).
var (
	PopsWorkload   = tracegen.PopsLike
	ThorWorkload   = tracegen.ThorLike
	AbaqusWorkload = tracegen.AbaqusLike
)

// RunWorkload wires a synthetic workload to a machine — mapping the shared
// segment into every process's address space, generating the trace, and
// running it to completion.
func RunWorkload(sys *System, cfg WorkloadConfig) error {
	if err := cfg.SetupSharedMappings(sys.MMU()); err != nil {
		return err
	}
	gen, err := tracegen.New(cfg)
	if err != nil {
		return err
	}
	return sys.Run(gen)
}

// Event tracing: a Probe attached through Config.Probe receives one typed
// Event per paper mechanism exercised — cache hits and misses by level and
// reference kind, TLB activity and aborted lookups, synonym resolutions,
// write-buffer traffic, inclusion invalidations, coherence messages reaching
// (or shielded from) the first level, bus transactions, DMA, and context
// switches. A nil Probe in Config disables collection entirely; the hot
// paths then pay only a nil check.
type (
	// Probe collects events; attach sinks with AddSink and Close at the
	// end of a run.
	Probe = probe.Probe
	// Event is one typed occurrence in the machine.
	Event = probe.Event
	// EventKind discriminates events; its String form ("l1-hit",
	// "syn-sameset", ...) keys the JSON report's probe.events map.
	EventKind = probe.Kind
	// EventSink consumes events in global emission order.
	EventSink = probe.Sink
	// EventCounts is the per-kind tally a Probe maintains inline.
	EventCounts = probe.Counts
	// WindowMetrics aggregates headline rates over a window of references.
	WindowMetrics = probe.WindowMetrics
	// MetricWindows folds the event stream into fixed-size windows.
	MetricWindows = probe.Windows
	// EventLog renders events as human-readable lines.
	EventLog = probe.Log
	// ChromeTrace exports the event stream as Chrome trace_event JSON.
	ChromeTrace = probe.ChromeTrace
)

// NewProbe creates an enabled probe; ringCapacity 0 selects the default
// per-CPU buffer size.
func NewProbe(ringCapacity int) *Probe { return probe.New(ringCapacity) }

// NewEventLog creates a line-oriented event log sink; filter may be nil.
func NewEventLog(w io.Writer, filter func(Event) bool) *EventLog {
	return probe.NewLog(w, filter)
}

// ParseEventFilter compiles a comma-separated list of event kind names or
// categories into a predicate for NewEventLog.
func ParseEventFilter(spec string) (func(Event) bool, error) { return probe.ParseFilter(spec) }

// NewChromeTrace creates a Chrome trace_event JSON exporter writing to w.
func NewChromeTrace(w io.Writer) *ChromeTrace { return probe.NewChromeTrace(w) }

// NewMetricWindows creates a windowed-metrics collector with the given
// window length in references.
func NewMetricWindows(every uint64) *MetricWindows { return probe.NewWindows(every) }

// Event kinds, one per paper mechanism.
const (
	EvL1Hit               = probe.EvL1Hit
	EvL1Miss              = probe.EvL1Miss
	EvL2Hit               = probe.EvL2Hit
	EvL2Miss              = probe.EvL2Miss
	EvTLBHit              = probe.EvTLBHit
	EvTLBMiss             = probe.EvTLBMiss
	EvTLBAbort            = probe.EvTLBAbort
	EvSynSameSet          = probe.EvSynSameSet
	EvSynMove             = probe.EvSynMove
	EvSynCross            = probe.EvSynCross
	EvSynBuffered         = probe.EvSynBuffered
	EvWriteBack           = probe.EvWriteBack
	EvWBEnqueue           = probe.EvWBEnqueue
	EvWBDrain             = probe.EvWBDrain
	EvWBCancel            = probe.EvWBCancel
	EvWBFlush             = probe.EvWBFlush
	EvWBStall             = probe.EvWBStall
	EvInclusionInval      = probe.EvInclusionInval
	EvCohInvalidate       = probe.EvCohInvalidate
	EvCohFlush            = probe.EvCohFlush
	EvCohInvalidateBuffer = probe.EvCohInvalidateBuffer
	EvCohFlushBuffer      = probe.EvCohFlushBuffer
	EvCohUpdate           = probe.EvCohUpdate
	EvCohProbe            = probe.EvCohProbe
	EvShielded            = probe.EvShielded
	EvBusRead             = probe.EvBusRead
	EvBusReadMod          = probe.EvBusReadMod
	EvBusInvalidate       = probe.EvBusInvalidate
	EvBusUpdate           = probe.EvBusUpdate
	EvDMARead             = probe.EvDMARead
	EvDMAWrite            = probe.EvDMAWrite
	EvCtxSwitch           = probe.EvCtxSwitch
	EvVictimHit           = probe.EvVictimHit
	EvVictimInsert        = probe.EvVictimInsert
	EvRLTEvict            = probe.EvRLTEvict
	EvTimeAccess          = probe.EvTimeAccess
	EvTimeTLBMiss         = probe.EvTimeTLBMiss
	EvTimeBusWait         = probe.EvTimeBusWait
	EvTimeWBStall         = probe.EvTimeWBStall
	EvTimeCtxSwitch       = probe.EvTimeCtxSwitch
)

// Cycle accounting: a CycleEngine attached through Config.Cycles measures
// per-CPU access times from the simulation itself — each reference charged
// its t1/t2/tm service time, TLB misses and context switches their
// penalties, and the bus arbitrated as a shared timed resource whose
// queueing delay is charged to the requester (see internal/cycles).
type (
	// CycleEngine is the machine-wide cycle accountant.
	CycleEngine = cycles.Engine
	// CycleParams are its latency inputs, in integer cycles.
	CycleParams = cycles.Params
	// CycleBreakdown partitions an agent's cycles by what they were
	// spent on.
	CycleBreakdown = cycles.Breakdown
	// AgentTiming is one agent's measured clock, references and breakdown.
	AgentTiming = cycles.AgentTiming
)

// NewCycleEngine creates a cycle engine; pr may be nil (no timing events).
func NewCycleEngine(p CycleParams, pr *Probe) (*CycleEngine, error) { return cycles.New(p, pr) }

// DefaultCycleParams returns the paper's latency scaling (t1=1, t2=4,
// tm=20) with no contention: measurements reproduce the Section 4 closed
// form exactly.
func DefaultCycleParams() CycleParams { return cycles.DefaultParams() }

// ContentionCycleParams returns DefaultCycleParams plus a contended bus.
func ContentionCycleParams() CycleParams { return cycles.ContentionParams() }

// Online auditing: an Auditor attached through Config.Audit snapshots the
// whole machine every N references (and on demand) and re-verifies the
// structural invariants the paper's correctness argument rests on —
// inclusion, single first-level copy per physical block, pointer
// reciprocity, buffer-bit bijection, dirty-bit consistency, swapped-valid
// legality, coherence exclusivity, and translation agreement. A nil Auditor
// in Config disables auditing; the hot path then pays one branch.
type (
	// Auditor drives periodic and on-demand invariant checks.
	Auditor = audit.Auditor
	// AuditSnapshot is a diffable point-in-time copy of the machine state.
	AuditSnapshot = audit.Snapshot
	// AuditViolation is one structural inconsistency found by a check.
	AuditViolation = audit.Violation
	// AuditInvariant identifies which checked property a violation breaks.
	AuditInvariant = audit.Invariant
)

// NewAuditor creates an auditor that audits every n references; n = 0
// audits on demand only (Auditor.Audit).
func NewAuditor(n uint64) *Auditor { return audit.New(n) }

// Live monitoring: latency histograms fed by the cycle engine
// (CycleEngine.SetLatencies), occupancy summaries computed from audit
// snapshots, and an HTTP server exposing both while a run is in flight.
type (
	// LatencyHistogram is a fixed-bucket distribution of cycle counts.
	LatencyHistogram = monitor.Histogram
	// Latencies holds per-CPU latency histograms, one set per kind.
	Latencies = monitor.Latencies
	// LatencyKind names one measured distribution ("access", "bus-wait",
	// "wb-drain", "wb-stall").
	LatencyKind = monitor.LatencyKind
	// MonitorServer serves /metrics, /snapshot, /state, expvar and pprof.
	MonitorServer = monitor.Server
	// MonitorState is one published view of a running simulation.
	MonitorState = monitor.State
	// OccupancySummary describes how full one cache's sets are.
	OccupancySummary = monitor.OccupancySummary
)

// The measured latency distributions.
const (
	LatAccess  = monitor.LatAccess
	LatBusWait = monitor.LatBusWait
	LatWBDrain = monitor.LatWBDrain
	LatWBStall = monitor.LatWBStall
)

// NewLatencies pre-sizes a latency collector for the given CPU count.
func NewLatencies(cpus int) *Latencies { return monitor.NewLatencies(cpus) }

// StartMonitor serves live monitoring endpoints on addr (":0" picks a
// port); publish states with MonitorServer.Publish.
func StartMonitor(addr string) (*MonitorServer, error) { return monitor.Start(addr) }

// Occupancy computes per-cache occupancy summaries from an audit snapshot.
func Occupancy(snap *AuditSnapshot) []OccupancySummary { return monitor.Occupancy(snap) }

// Telemetry: causal span tracing, post-mortem flight recording, and
// cycle attribution, all riding the probe event stream (attach any of them
// with Probe.AddSink). The tracer turns sampled references into nested
// cause-and-effect span trees; the recorder keeps a fixed ring of recent
// events and dumps a bundle on audit violations, latency tripwires, or
// demand; the attribution profiler splits every measured cycle by
// mechanism and reconciles with the cycle engine exactly.
type (
	// SpanTracer samples 1-in-N references into causal span trees.
	SpanTracer = telemetry.Tracer
	// TraceSpan is one node of a causal span tree.
	TraceSpan = telemetry.Span
	// SpanExporter consumes completed span trees.
	SpanExporter = telemetry.SpanExporter
	// FlightRecorder keeps recent events for post-mortem bundles.
	FlightRecorder = telemetry.Recorder
	// FlightRecorderConfig configures a FlightRecorder.
	FlightRecorderConfig = telemetry.RecorderConfig
	// FlightBundle is one parsed post-mortem capture.
	FlightBundle = telemetry.Bundle
	// AttributionProfiler splits measured cycles by mechanism.
	AttributionProfiler = telemetry.Attribution
	// AttributionConfig configures an AttributionProfiler.
	AttributionConfig = telemetry.AttrConfig
	// AttributionReport is the profiler's deterministic summary.
	AttributionReport = telemetry.AttributionReport
	// BuildInfo identifies the binary that produced a report or bundle.
	BuildInfo = telemetry.BuildInfo
)

// NewSpanTracer creates a span tracer sampling one reference in every
// (0 selects the 1-in-4096 default), exporting to the given exporters.
func NewSpanTracer(every uint64, exps ...SpanExporter) *SpanTracer {
	return telemetry.NewTracer(every, exps...)
}

// NewOTLPSpanWriter creates a span exporter writing one OTLP-style JSON
// trace document to w.
func NewOTLPSpanWriter(w io.Writer) SpanExporter { return telemetry.NewOTLPWriter(w) }

// NewChromeSpanWriter creates a span exporter writing nested Chrome
// trace_event JSON (chrome://tracing, Perfetto) to w.
func NewChromeSpanWriter(w io.Writer) SpanExporter { return telemetry.NewChromeSpanWriter(w) }

// NewFlightRecorder creates an armed flight recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return telemetry.NewRecorder(cfg)
}

// ReadFlightBundle loads and validates a bundle file written by a
// FlightRecorder.
func ReadFlightBundle(path string) (*FlightBundle, error) { return telemetry.ReadBundle(path) }

// ParseFlightBundle reads and strictly validates one bundle document.
func ParseFlightBundle(r io.Reader) (*FlightBundle, error) { return telemetry.ParseBundle(r) }

// NewAttributionProfiler creates a cycle-attribution profiler.
func NewAttributionProfiler(cfg AttributionConfig) *AttributionProfiler {
	return telemetry.NewAttribution(cfg)
}

// Build identifies this binary (module, version, go version, VCS revision).
func Build() BuildInfo { return telemetry.Build() }

// TimeParams are the inputs of the paper's access-time equation.
type TimeParams = timemodel.Params

// DefaultTimeParams returns the paper's latency scaling (t2 = 4·t1) around
// measured hit ratios.
func DefaultTimeParams(h1, h2 float64) TimeParams { return timemodel.DefaultParams(h1, h2) }

// AccessTime evaluates Tacc = h1·t1 + (1−h1)·h2·t2 + (1−h1−(1−h1)·h2)·tm.
func AccessTime(p TimeParams) float64 { return timemodel.AccessTime(p) }

// Crossover returns the R-R translation slow-down at which the V-R
// organization starts winning (Figure 6's headline analysis).
func Crossover(vr, rr TimeParams) float64 { return timemodel.Crossover(vr, rr) }

// CurvePoint is one point of a Figure 4-6 access-time series.
type CurvePoint = timemodel.CurvePoint

// Curve computes a Figure 4-6 series over R-R slow-downs in
// [0, maxSlowdown].
func Curve(vr, rr TimeParams, maxSlowdown float64, steps int) []CurvePoint {
	return timemodel.Curve(vr, rr, maxSlowdown, steps)
}
