package vrsim_test

import (
	"bytes"
	"testing"

	vrsim "repro"
)

func TestPublicWriteUpdateProtocol(t *testing.T) {
	cfg := smallConfig(vrsim.VR)
	cfg.Protocol = vrsim.WriteUpdate
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seg := sys.MMU().NewSegment(4096)
	if err := sys.MMU().MapShared(1, 0x10000, seg); err != nil {
		t.Fatal(err)
	}
	if err := sys.MMU().MapShared(2, 0x20000, seg); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Apply(vrsim.Ref{CPU: 1, Kind: vrsim.Read, PID: 2, Addr: 0x20000}); err != nil {
		t.Fatal(err)
	}
	w, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Apply(vrsim.Ref{CPU: 1, Kind: vrsim.Read, PID: 2, Addr: 0x20000})
	if err != nil {
		t.Fatal(err)
	}
	if !got.L1Hit || got.Token != w.Token {
		t.Errorf("update protocol through public API: %+v want token %d", got, w.Token)
	}
}

func TestPublicWriteThrough(t *testing.T) {
	cfg := smallConfig(vrsim.VR)
	cfg.L1WriteThrough = true
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := vrsim.PopsWorkload().Scaled(0.001)
	wl.CPUs = cfg.CPUs
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		if sys.Stats(cpu).WriteBacks != 0 {
			t.Error("write-through produced write-backs")
		}
	}
}

func TestPublicPIDTagged(t *testing.T) {
	cfg := smallConfig(vrsim.VR)
	cfg.PIDTagged = true
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := vrsim.AbaqusWorkload().Scaled(0.001)
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		st := sys.Stats(cpu)
		if st.CtxSwitches == 0 {
			t.Error("no switches ran")
		}
		if st.SwappedWriteBacks != 0 {
			t.Error("PID-tagged cache swapped lines")
		}
	}
}

func TestPublicDMA(t *testing.T) {
	sys, err := vrsim.New(smallConfig(vrsim.VR))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x400})
	if err != nil {
		t.Fatal(err)
	}
	var dev *vrsim.DMA = sys.NewDMA()
	got, err := dev.ReadBlock(w.PA)
	if err != nil {
		t.Fatal(err)
	}
	if got != w.Token {
		t.Errorf("DMA read %d, want %d", got, w.Token)
	}
}

func TestPublicInvalidConfigRejected(t *testing.T) {
	cfg := smallConfig(vrsim.RRNoInclusion)
	cfg.Protocol = vrsim.WriteUpdate
	if _, err := vrsim.New(cfg); err == nil {
		t.Error("no-inclusion + write-update accepted")
	}
	cfg = smallConfig(vrsim.VR)
	cfg.L1.Block = 24
	if _, err := vrsim.New(cfg); err == nil {
		t.Error("bad block size accepted")
	}
}

// TestPublicTelemetry drives the telemetry re-exports end-to-end: a timed
// workload with a span tracer, a flight recorder and an attribution
// profiler on the probe, reconciled against the cycle engine.
func TestPublicTelemetry(t *testing.T) {
	if b := vrsim.Build(); b.GoVersion == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	pr := vrsim.NewProbe(0)
	eng, err := vrsim.NewCycleEngine(vrsim.ContentionCycleParams(), pr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(vrsim.VR)
	cfg.Probe, cfg.Cycles = pr, eng
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var spans bytes.Buffer
	tracer := vrsim.NewSpanTracer(64, vrsim.NewChromeSpanWriter(&spans))
	attr := vrsim.NewAttributionProfiler(vrsim.AttributionConfig{})
	rec := vrsim.NewFlightRecorder(vrsim.FlightRecorderConfig{EventsPerCPU: 128})
	pr.AddSink(tracer)
	pr.AddSink(attr)
	pr.AddSink(rec)

	wl := vrsim.PopsWorkload().Scaled(0.002)
	wl.CPUs = 2
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := attr.Reconcile(eng); err != nil {
		t.Fatal(err)
	}
	if tracer.Spans() == 0 {
		t.Error("tracer sampled no references")
	}
	data, err := rec.Dump("facade test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetryParse(data); err != nil {
		t.Fatal(err)
	}
}

// telemetryParse round-trips a bundle through the public parser.
func telemetryParse(data []byte) (*vrsim.FlightBundle, error) {
	return vrsim.ParseFlightBundle(bytes.NewReader(data))
}
