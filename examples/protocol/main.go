// Protocol demo: the same producer/consumer ping-pong under the paper's
// write-invalidate protocol and under a Firefly-style write-update
// protocol. With invalidation the consumer misses after every producer
// write; with updates the consumer's copy — reached through the R-cache's
// v-pointer — is refreshed in place and keeps hitting. The paper notes its
// organization "will also work for other protocols"; this shows it doing
// exactly that.
package main

import (
	"fmt"
	"log"

	vrsim "repro"
)

func run(proto vrsim.Protocol) (consumerHits, consumerMisses uint64, busTxns uint64) {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         2,
		Organization: vrsim.VR,
		PageSize:     4096,
		Protocol:     proto,
		L1:           vrsim.Geometry{Size: 8 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		CheckOracle:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// One page shared between the producer (cpu 0, pid 1) and the consumer
	// (cpu 1, pid 2).
	seg := sys.MMU().NewSegment(4096)
	if err := sys.MMU().MapShared(1, 0x10000, seg); err != nil {
		log.Fatal(err)
	}
	if err := sys.MMU().MapShared(2, 0x20000, seg); err != nil {
		log.Fatal(err)
	}

	apply := func(ref vrsim.Ref) vrsim.AccessResult {
		res, err := sys.Apply(ref)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	// Warm both copies.
	apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000})
	apply(vrsim.Ref{CPU: 1, Kind: vrsim.Read, PID: 2, Addr: 0x20000})

	// Producer writes, consumer reads, 200 rounds.
	for i := 0; i < 200; i++ {
		apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x10000})
		res := apply(vrsim.Ref{CPU: 1, Kind: vrsim.Read, PID: 2, Addr: 0x20000})
		if res.L1Hit {
			consumerHits++
		} else {
			consumerMisses++
		}
	}
	return consumerHits, consumerMisses, sys.Bus().Stats().Total()
}

func main() {
	for _, proto := range []vrsim.Protocol{vrsim.WriteInvalidate, vrsim.WriteUpdate} {
		hits, misses, txns := run(proto)
		fmt.Printf("%v:\n", proto)
		fmt.Printf("  consumer L1: %d hits, %d misses over 200 rounds\n", hits, misses)
		fmt.Printf("  bus transactions: %d\n\n", txns)
	}
	fmt.Println("write-invalidate forces a coherence miss per round; write-update keeps the")
	fmt.Println("consumer's V-cache copy fresh through the v-pointer, trading bus updates for hits.")
}
