// Replay demo: generate a workload once, save it as a compressed trace
// file, then replay the identical reference stream through two different
// cache configurations — the workflow for comparing designs on a fixed
// trace, exactly how the paper's evaluation was run.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	vrsim "repro"
	"repro/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "vrsim-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "thor.trc.gz")

	// 1. Generate once and save (gzip-compressed binary format).
	wl := vrsim.ThorWorkload().Scaled(0.02)
	gen, err := vrsim.NewWorkload(wl)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := trace.NewGzipWriter(f)
	n := 0
	for {
		ref, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Write(ref); err != nil {
			log.Fatal(err)
		}
		n++
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved %d records to %s (%d bytes compressed)\n\n", n, filepath.Base(path), info.Size())

	// 2. Replay the identical stream through two L1 sizes.
	for _, l1 := range []uint64{4 << 10, 16 << 10} {
		sys, err := vrsim.New(vrsim.Config{
			CPUs:         wl.CPUs,
			Organization: vrsim.VR,
			PageSize:     wl.PageSize,
			L1:           vrsim.Geometry{Size: l1, Block: 16, Assoc: 1},
			L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		// The shared-segment layout must be rebuilt identically so the
		// synonyms in the trace resolve to the same physical frames.
		if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
			log.Fatal(err)
		}
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		reader, err := trace.OpenBinary(rf)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(reader); err != nil {
			log.Fatal(err)
		}
		rf.Close()
		agg := sys.Aggregate()
		fmt.Printf("L1 %2dK: h1 = %.3f  h2 = %.3f  (same %d references)\n",
			l1>>10, agg.H1, agg.H2, sys.Refs())
	}
}
