// Quickstart: build a 4-CPU machine with the paper's V-R organization, run
// the pops-like workload, and print the headline hit ratios and the
// average access time from the paper's equation.
package main

import (
	"fmt"
	"log"

	vrsim "repro"
)

func main() {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         4,
		Organization: vrsim.VR,
		L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A pops-like parallel workload at 10% of the published trace length;
	// drop Scaled for the full 3.3M references.
	workload := vrsim.PopsWorkload().Scaled(0.1)
	if err := vrsim.RunWorkload(sys, workload); err != nil {
		log.Fatal(err)
	}

	agg := sys.Aggregate()
	fmt.Printf("ran %d references on %d CPUs\n", sys.Refs(), sys.CPUs())
	fmt.Printf("h1 = %.3f  h2 = %.3f\n", agg.H1, agg.H2)
	fmt.Printf("per kind: read %.3f  write %.3f  instr %.3f\n",
		agg.L1.DataRead, agg.L1.DataWrite, agg.L1.Instr)

	t := vrsim.DefaultTimeParams(agg.H1, agg.H2)
	fmt.Printf("average access time (t1=1, t2=4, tm=20): %.3f cycles\n",
		vrsim.AccessTime(t))

	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		st := sys.Stats(cpu)
		fmt.Printf("cpu %d: %d write-backs, %d synonym resolutions, %d coherence messages to L1\n",
			cpu, st.WriteBacks, st.SynonymTotal()-st.Synonyms[0], st.Coherence.Total())
	}
}
