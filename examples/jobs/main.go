// Jobs: drive the vrsimd job server from Go. An in-process Manager and
// Server stand in for a running daemon (point client.New at a real
// daemon's address to do this over the network); the client submits a
// timed sweep, streams progress events, and fetches the finished report.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"repro/internal/jobs"
	"repro/internal/jobs/client"
)

func main() {
	// A daemon in miniature: state directory, worker pool, HTTP surface.
	// `vrsimd serve -http ... -state ...` is exactly this plus a listener.
	dir, err := os.MkdirTemp("", "vrsimd-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m, err := jobs.Open(jobs.Options{Dir: dir, Workers: 2, ProgressEvery: 20000})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	srv := jobs.NewServer(m)
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := client.New(ts.URL)
	ctx := context.Background()

	// Submit a small V-R vs R-R sweep; the config document is what curl
	// would POST to /jobs.
	st, err := c.Submit(ctx, []byte(`{
		"kind": "sweep", "preset": "pops", "scale": 0.1,
		"machines": [{"org": "vr"}, {"org": "rr"}]}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%s), %d references\n", st.ID, st.Kind, st.TotalRefs)

	// Stream progress until the job reaches a terminal state. Each event
	// carries the record/reference cursors and the latest closed probe
	// window; polling c.Status would see the same documents.
	final, err := c.Events(ctx, st.ID, func(s jobs.Status) {
		if s.Window != nil {
			fmt.Printf("  %s: %d/%d refs, window %d: L1 misses %d\n",
				s.State, s.Refs, s.TotalRefs, s.Window.Index, s.Window.L1Misses)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if final.State != jobs.StateDone {
		log.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	report, err := c.Report(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %d bytes\n", len(report))
}
