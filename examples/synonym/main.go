// Synonym demo: two processes map the same physical page at different
// virtual addresses and take turns accessing it. The V-cache is virtually
// addressed, so the copies would alias — the R-cache's reverse-translation
// pointers detect every case and keep exactly one V-cache copy, moving or
// retagging it as the name changes. Run with -v to watch each access.
package main

import (
	"flag"
	"fmt"
	"log"

	vrsim "repro"
)

func main() {
	verbose := flag.Bool("v", false, "print every access")
	signals := flag.Bool("signals", false, "print every Table 4 interface signal")
	flag.Parse()

	var tracer vrsim.Tracer
	if *signals {
		tracer = vrsim.TracerFunc(func(s vrsim.Signal) { fmt.Println("   signal:", s) })
	}
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         1,
		Organization: vrsim.VR,
		PageSize:     4096,
		Tracer:       tracer,
		// An 8K virtually-indexed cache over 4K pages: virtual index bits
		// exceed the page offset, so synonyms can land in different sets.
		L1:          vrsim.Geometry{Size: 8 << 10, Block: 16, Assoc: 1},
		L2:          vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		CheckOracle: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One shared page, mapped by process 1 at 0x10000 and process 2 at
	// 0x31000. The offsets differ by an odd number of pages, so the two
	// names index different V-cache sets.
	seg := sys.MMU().NewSegment(4096)
	if err := sys.MMU().MapShared(1, 0x10000, seg); err != nil {
		log.Fatal(err)
	}
	if err := sys.MMU().MapShared(2, 0x31000, seg); err != nil {
		log.Fatal(err)
	}

	access := func(kind vrsim.Ref, label string) vrsim.AccessResult {
		res, err := sys.Apply(kind)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Printf("%-28s L%d synonym=%v token=%d\n", label, res.Level(), res.Synonym, res.Token)
		}
		return res
	}

	// Process 1 writes the shared page under its name.
	w := access(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x10040}, "P1 write 0x10040")

	// Context switch to process 2, which reads the same data under its own
	// virtual address: a V-cache miss, an R-cache hit, and a synonym
	// resolution that hands over process 1's dirty copy without touching
	// memory.
	if _, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.CtxSwitch, PID: 2}); err != nil {
		log.Fatal(err)
	}
	r := access(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 2, Addr: 0x31040}, "P2 read  0x31040")

	fmt.Printf("P1 wrote token %d at VA 0x10040; P2 read token %d at VA 0x31040\n", w.Token, r.Token)
	fmt.Printf("resolution: %v (paper: move(v-pointer) when the synonym is in a different set)\n", r.Synonym)

	// Ping-pong between the two names a few times; every switch of name is
	// resolved at the second level, never by going to memory.
	for i := 0; i < 3; i++ {
		if _, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.CtxSwitch, PID: 1}); err != nil {
			log.Fatal(err)
		}
		access(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x10040}, "P1 write 0x10040")
		if _, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.CtxSwitch, PID: 2}); err != nil {
			log.Fatal(err)
		}
		access(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 2, Addr: 0x31040}, "P2 read  0x31040")
	}

	st := sys.Stats(0)
	fmt.Printf("synonym resolutions: sameset=%d move=%d buffer-reattach=%d\n",
		st.Synonyms[1], st.Synonyms[2], st.Synonyms[4])
	fmt.Println("the data oracle verified every read returned the newest write")
}
