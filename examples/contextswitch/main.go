// Context-switch demo: compare the paper's swapped-valid lazy flush
// against eager flush-at-switch on a context-switch-heavy abaqus-like
// workload. Both write back the same dirty data, but the lazy scheme
// spreads the write-backs over time (one buffer suffices) while the eager
// scheme clusters them at each switch — the latency spike the paper's
// swapped-valid bit removes.
package main

import (
	"fmt"
	"log"

	vrsim "repro"
)

func run(eager bool) *vrsim.System {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:          2,
		Organization:  vrsim.VR,
		L1:            vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
		L2:            vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
		EagerCtxFlush: eager,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vrsim.RunWorkload(sys, vrsim.AbaqusWorkload().Scaled(0.1)); err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	lazy := run(false)
	eager := run(true)

	var lazyWB, lazySwapped, lazySwitches uint64
	var eagerWB, eagerClustered uint64
	for cpu := 0; cpu < lazy.CPUs(); cpu++ {
		st := lazy.Stats(cpu)
		lazyWB += st.WriteBacks
		lazySwapped += st.SwappedWriteBacks
		lazySwitches += st.CtxSwitches
		est := eager.Stats(cpu)
		eagerWB += est.WriteBacks
		eagerClustered += est.EagerFlushWriteBacks
	}

	fmt.Printf("abaqus-like workload, %d context switches\n\n", lazySwitches)
	fmt.Println("lazy (swapped-valid bit, the paper's scheme):")
	fmt.Printf("  %d write-backs, of which %d were swapped blocks written back\n",
		lazyWB, lazySwapped)
	fmt.Printf("  one at a time as their slots were reused — %.1f per switch on average,\n",
		float64(lazySwapped)/float64(lazySwitches))
	fmt.Println("  spread over time so a single write-back buffer absorbs them")

	fmt.Println("\neager (flush everything at switch time):")
	fmt.Printf("  %d write-backs, of which %d were clustered at context switches\n",
		eagerWB, eagerClustered)
	fmt.Printf("  — bursts of %.1f back-to-back write-backs each switch, stalling the processor\n",
		float64(eagerClustered)/float64(lazySwitches))

	// Table 3's point: under the lazy scheme almost all write-back
	// intervals land in the "10 and larger" bucket.
	h := lazy.Stats(0).WriteBackIntervals.Histogram()
	var short uint64
	for v := 1; v < 10; v++ {
		short += h.Count(v)
	}
	fmt.Printf("\nlazy write-back spacing on cpu 0: %d of %d intervals shorter than 10 references\n",
		short, h.Total())
}
