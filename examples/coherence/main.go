// Coherence shielding demo: run the same 4-CPU workload under the paper's
// V-R organization and under the R-R baseline without inclusion, and
// compare how many coherence messages reach each first-level cache. With
// inclusion, the R-cache answers most snoops itself; without it, every
// remote bus transaction must probe the L1 (the Tables 11-13 effect).
package main

import (
	"fmt"
	"log"

	vrsim "repro"
)

func run(org vrsim.Organization) []uint64 {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         4,
		Organization: org,
		L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vrsim.RunWorkload(sys, vrsim.PopsWorkload().Scaled(0.1)); err != nil {
		log.Fatal(err)
	}
	return sys.CoherenceMessages()
}

func main() {
	vr := run(vrsim.VR)
	noIncl := run(vrsim.RRNoInclusion)

	fmt.Println("coherence messages reaching the first-level cache (pops-like, 10% scale):")
	fmt.Printf("%-5s %-12s %-14s %s\n", "cpu", "V-R", "R-R(no incl)", "shielding factor")
	var vrTotal, niTotal uint64
	for cpu := range vr {
		factor := float64(noIncl[cpu]) / float64(vr[cpu])
		fmt.Printf("%-5d %-12d %-14d %.1fx\n", cpu, vr[cpu], noIncl[cpu], factor)
		vrTotal += vr[cpu]
		niTotal += noIncl[cpu]
	}
	fmt.Printf("\nwith inclusion the R-cache filtered %.0f%% of the traffic the\n",
		100*(1-float64(vrTotal)/float64(niTotal)))
	fmt.Println("unshielded L1 would have seen — the paper's Tables 11-13 effect.")
}
