// I/O demo: the paper's introduction lists I/O as problem #4 for
// virtually-addressed caches — devices use physical addresses, so a
// virtual cache would need reverse translation to stay coherent with DMA.
// In the V-R organization the device simply joins the physical bus
// protocol: the R-cache's v-pointers reach any first-level copies, and no
// translation hardware is involved.
package main

import (
	"fmt"
	"log"

	vrsim "repro"
)

func main() {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         2,
		Organization: vrsim.VR,
		PageSize:     4096,
		L1:           vrsim.Geometry{Size: 8 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		CheckOracle:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	apply := func(ref vrsim.Ref) vrsim.AccessResult {
		res, err := sys.Apply(ref)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// The CPU builds an output buffer (dirty data in its V-cache).
	var bufPA [4]vrsim.PAddr
	for i := 0; i < 4; i++ {
		res := apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1,
			Addr: 0x2000 + vrsim.VAddr(i*16)})
		bufPA[i] = res.PA
	}

	// A disk controller reads the buffer by physical address: each read
	// snoops the dirty V-cache copies out through the v-pointers.
	disk := sys.NewDMA()
	fmt.Println("device output (memory-to-device):")
	for i := 0; i < 4; i++ {
		tok, err := disk.ReadBlock(bufPA[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  block %d at pa %#x: token %d (the CPU's freshly written data)\n",
			i, uint64(bufPA[i]), tok)
	}

	// Device input: the controller writes a new page image; stale cached
	// copies are invalidated through the ordinary invalidation protocol.
	fmt.Println("\ndevice input (device-to-memory):")
	newTok := disk.WriteBlock(bufPA[0])
	res := apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x2000})
	fmt.Printf("  device wrote token %d; CPU read token %d (hit L%d)\n",
		newTok, res.Token, res.Level())
	if res.Token != newTok {
		log.Fatal("CPU observed stale data after DMA input")
	}
	fmt.Println("\nno reverse translation anywhere: the physically-addressed R-cache and its")
	fmt.Println("v-pointers handled both directions (the paper's solution to problem #4).")
}
