package vrsim_test

// Allocation regression tests for the per-reference hot path. Once the
// machine is warm (pages faulted in, lines resident, write-buffer ring in
// steady state), applying a reference must not allocate at all — the sweep
// engine's throughput depends on it. Guarded paths: a first-level hit (the
// overwhelmingly common case), the V-miss/R-hit fill path with its victim
// choice and replacement, and the probe-nil check every emission site pays
// when observability is off.

import (
	"testing"

	vrsim "repro"
)

// allocMachine builds a small 1-CPU machine with no probe, no oracle and
// no invariant checking — the production configuration of the hot loop.
// Optional tweaks adjust the config before the build.
func allocMachine(t *testing.T, org vrsim.Organization, tweaks ...func(*vrsim.Config)) *vrsim.System {
	t.Helper()
	cfg := vrsim.Config{
		CPUs:         1,
		Organization: org,
		L1:           vrsim.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
	}
	for _, tw := range tweaks {
		tw(&cfg)
	}
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustApply(t *testing.T, sys *vrsim.System, refs ...vrsim.Ref) {
	t.Helper()
	for _, r := range refs {
		if _, err := sys.Apply(r); err != nil {
			t.Fatal(err)
		}
	}
}

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s: %v allocs per reference, want 0", name, n)
	}
}

// TestWarmHitPathAllocationFree covers the first-level hit path — read,
// write and instruction fetch against a resident line — for all three
// organizations.
func TestWarmHitPathAllocationFree(t *testing.T) {
	orgs := []struct {
		name string
		org  vrsim.Organization
	}{
		{"VR", vrsim.VR},
		{"RRInclusion", vrsim.RRInclusion},
		{"RRNoInclusion", vrsim.RRNoInclusion},
		{"VRRLT", vrsim.VRRLT},
	}
	for _, o := range orgs {
		t.Run(o.name, func(t *testing.T) {
			sys := allocMachine(t, o.org)
			read := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x2000}
			write := vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x2000}
			ifetch := vrsim.Ref{CPU: 0, Kind: vrsim.IFetch, PID: 1, Addr: 0x3000}
			mustApply(t, sys, read, write, ifetch) // fault pages in, fill lines
			requireZeroAllocs(t, "read hit", func() { mustApply(t, sys, read) })
			requireZeroAllocs(t, "write hit", func() { mustApply(t, sys, write) })
			requireZeroAllocs(t, "ifetch hit", func() { mustApply(t, sys, ifetch) })
		})
	}
}

// observedMachine builds a 1-CPU machine with the full observability stack
// armed the way a monitored production run carries it: a timed engine with
// latency histograms attached, and an auditor ticking with a period long
// enough that no audit fires inside the measured window (audits themselves
// snapshot and allocate — they are periodic by design, not per-reference).
func observedMachine(t *testing.T, org vrsim.Organization) *vrsim.System {
	t.Helper()
	eng, err := vrsim.NewCycleEngine(vrsim.ContentionCycleParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetLatencies(vrsim.NewLatencies(1))
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         1,
		Organization: org,
		L1:           vrsim.Geometry{Size: 4 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		Cycles:       eng,
		Audit:        vrsim.NewAuditor(1 << 40),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestWarmHitPathWithHistogramsAllocationFree proves enabling latency
// histograms (fixed buckets, pre-sized per-CPU sets) and arming the auditor
// keeps the warm hit and miss paths allocation-free: Record is
// branch-and-increment into fixed arrays, and an idle auditor tick is one
// counter decrement.
func TestWarmHitPathWithHistogramsAllocationFree(t *testing.T) {
	orgs := []struct {
		name string
		org  vrsim.Organization
	}{
		{"VR", vrsim.VR},
		{"RRInclusion", vrsim.RRInclusion},
		{"RRNoInclusion", vrsim.RRNoInclusion},
		{"VRRLT", vrsim.VRRLT},
	}
	for _, o := range orgs {
		t.Run(o.name, func(t *testing.T) {
			sys := observedMachine(t, o.org)
			read := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x2000}
			write := vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x2000}
			// L1-conflicting pair for the miss path (see below).
			a := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000}
			b := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x11000}
			mustApply(t, sys, read, write, a, b, a, b)
			requireZeroAllocs(t, "read hit + histograms", func() { mustApply(t, sys, read) })
			requireZeroAllocs(t, "write hit + histograms", func() { mustApply(t, sys, write) })
			requireZeroAllocs(t, "V-miss/R-hit + histograms", func() { mustApply(t, sys, a, b) })
			if eng := sys.Cycles(); eng.Latencies().Hist(0, vrsim.LatAccess).Count() == 0 {
				t.Fatal("histograms did not record despite being attached")
			}
		})
	}
}

// TestWarmMissPathAllocationFree covers the V-miss/R-hit fill path: two
// addresses that collide in the direct-mapped first level but live in
// different second-level sets evict each other forever, so every reference
// is a first-level miss served by the second level — exercising victim
// choice, replacement, the r/v-pointer bookkeeping and (for the dirty
// variant) the write-back ring.
func TestWarmMissPathAllocationFree(t *testing.T) {
	orgs := []struct {
		name string
		org  vrsim.Organization
	}{
		{"VR", vrsim.VR},
		{"RRInclusion", vrsim.RRInclusion},
		{"RRNoInclusion", vrsim.RRNoInclusion},
		{"VRRLT", vrsim.VRRLT},
	}
	for _, o := range orgs {
		t.Run(o.name, func(t *testing.T) {
			sys := allocMachine(t, o.org)
			// Same L1 set (4K apart, 4K direct-mapped L1), different L2 sets.
			a := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000}
			b := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x11000}
			wa := a
			wa.Kind = vrsim.Write
			mustApply(t, sys, a, b, a, b) // fault in, settle both in L2
			requireZeroAllocs(t, "clean V-miss/R-hit", func() { mustApply(t, sys, a, b) })
			// Dirty the evicted line so each miss also pushes through the
			// write-back buffer.
			mustApply(t, sys, wa, b)
			requireZeroAllocs(t, "dirty V-miss/R-hit", func() { mustApply(t, sys, wa, b) })
		})
	}
}

// TestWarmSynonymMachineryAllocationFree pins the new synonym-strategy
// structures to the zero-alloc contract: with a victim cache armed, the
// steady-state conflict loop parks and takes an entry on every miss; with a
// deliberately tiny reverse-lookup table, every fill forces a table
// eviction (and the forced first-level eviction it implies).
func TestWarmSynonymMachineryAllocationFree(t *testing.T) {
	// Same direct-mapped L1 set, different L2 sets: every access misses L1.
	a := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000}
	b := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x11000}
	wa := a
	wa.Kind = vrsim.Write

	for _, o := range []struct {
		name string
		org  vrsim.Organization
	}{{"VR", vrsim.VR}, {"RRNoInclusion", vrsim.RRNoInclusion}, {"VRRLT", vrsim.VRRLT}} {
		t.Run(o.name+"/victim", func(t *testing.T) {
			sys := allocMachine(t, o.org, func(c *vrsim.Config) { c.VictimEntries = 4 })
			mustApply(t, sys, a, b, a, b, a, b) // reach park/take steady state
			requireZeroAllocs(t, "victim park+take", func() { mustApply(t, sys, a, b) })
			requireZeroAllocs(t, "dirty victim park+take", func() { mustApply(t, sys, wa, b) })
			if st := sys.Stats(0); st.VictimHits == 0 || st.VictimInserts == 0 {
				t.Fatalf("victim cache not exercised: hits %d inserts %d", st.VictimHits, st.VictimInserts)
			}
		})
	}

	t.Run("rlt-evict", func(t *testing.T) {
		// Two blocks in different L1 sets coexist in the first level, but a
		// one-entry table cannot hold both reverse translations: every fill
		// evicts the other's entry, forcing its (perfectly valid) line out
		// of the L1 — the strategy's capacity cost, on every reference.
		sys := allocMachine(t, vrsim.VRRLT, func(c *vrsim.Config) { c.RLTEntries = 1 })
		p := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000}
		q := vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10400}
		wp := p
		wp.Kind = vrsim.Write
		mustApply(t, sys, p, q, p, q)
		requireZeroAllocs(t, "rlt capacity eviction", func() { mustApply(t, sys, p, q) })
		requireZeroAllocs(t, "dirty rlt capacity eviction", func() { mustApply(t, sys, wp, q) })
		if st := sys.Stats(0); st.RLTEvictions == 0 {
			t.Fatal("one-entry RLT never evicted")
		}
	})
}
