package vrsim_test

// Replay-based consistency check of the observability layer: every counter
// in internal/stats is mirrored by exactly one probe event at the emission
// site, so summing the event stream must reproduce the counters exactly —
// for each organization and for the policy variants that exercise the
// remaining event kinds (eager flush, write-update, write-through).

import (
	"fmt"
	"testing"

	vrsim "repro"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// cpuTally accumulates per-CPU event counts, splitting access events by
// reference kind and write-backs by their aux flags.
type cpuTally struct {
	kinds          [probe.NumKinds]uint64
	aux            [probe.NumKinds]uint64 // summed Aux; cycles for timing kinds
	l1Hits, l1Miss [3]uint64              // by stats.AccessKind
	l2Hits, l2Miss [3]uint64
	swapped, eager uint64
}

type tallySink struct {
	cpus map[int]*cpuTally
}

func (t *tallySink) of(cpu int) *cpuTally {
	c := t.cpus[cpu]
	if c == nil {
		c = &cpuTally{}
		t.cpus[cpu] = c
	}
	return c
}

func (t *tallySink) Event(ev probe.Event) {
	c := t.of(ev.CPU)
	c.kinds[ev.Kind]++
	switch ev.Kind {
	case probe.EvL1Hit:
		c.l1Hits[ev.Access]++
	case probe.EvL1Miss:
		c.l1Miss[ev.Access]++
	case probe.EvL2Hit:
		c.l2Hits[ev.Access]++
	case probe.EvL2Miss:
		c.l2Miss[ev.Access]++
	case probe.EvWriteBack:
		if ev.Aux&probe.WBSwapped != 0 {
			c.swapped++
		}
		if ev.Aux&probe.WBEager != 0 {
			c.eager++
		}
	case probe.EvTimeAccess, probe.EvTimeTLBMiss, probe.EvTimeBusWait,
		probe.EvTimeWBStall, probe.EvTimeCtxSwitch:
		c.aux[ev.Kind] += ev.Aux
	}
}

// synKinds maps core synonym classifications to their event kinds.
var synKinds = map[core.SynonymKind]probe.Kind{
	core.SynSameSet:  probe.EvSynSameSet,
	core.SynMove:     probe.EvSynMove,
	core.SynCross:    probe.EvSynCross,
	core.SynBuffered: probe.EvSynBuffered,
}

// cohKinds are the event kinds that mirror stats.CoherenceStats records.
var cohKinds = []probe.Kind{
	probe.EvCohInvalidate, probe.EvCohFlush, probe.EvCohInvalidateBuffer,
	probe.EvCohFlushBuffer, probe.EvCohUpdate, probe.EvCohProbe,
	probe.EvInclusionInval,
}

// timingParams exercises every timing event kind: a contended bus plus
// non-zero TLB and context-switch penalties.
func timingParams() vrsim.CycleParams {
	p := vrsim.ContentionCycleParams()
	p.TLBMissPenalty = 8
	p.CtxSwitchCost = 40
	return p
}

func checkConsistency(t *testing.T, cfg vrsim.Config) {
	t.Helper()
	pr := probe.New(64) // tiny rings force frequent merged flushes
	sink := &tallySink{cpus: map[int]*cpuTally{}}
	pr.AddSink(sink)
	cfg.Probe = pr
	eng, err := vrsim.NewCycleEngine(timingParams(), pr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cycles = eng

	wl := vrsim.PopsWorkload().Scaled(0.01)
	cfg.CPUs = wl.CPUs
	sys, err := vrsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	pr.Flush()
	verifyEventsMatchStats(t, cfg, sys, pr, sink)
}

// verifyEventsMatchStats requires every internal/stats counter of sys to be
// reproduced exactly by the event tallies accumulated in sink.
func verifyEventsMatchStats(t *testing.T, cfg vrsim.Config, sys *vrsim.System, pr *probe.Probe, sink *tallySink) {
	t.Helper()
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		st := sys.Stats(cpu)
		c := sink.of(cpu)
		eq := func(what string, got, want uint64) {
			t.Helper()
			if got != want {
				t.Errorf("cpu %d: %s: events %d, stats %d", cpu, what, got, want)
			}
		}
		for _, k := range stats.Kinds() {
			eq(fmt.Sprintf("L1 %v hits", k), c.l1Hits[k], st.L1.ByKind[k].Hits)
			eq(fmt.Sprintf("L1 %v misses", k), c.l1Miss[k], st.L1.ByKind[k].Misses())
			eq(fmt.Sprintf("L2 %v hits", k), c.l2Hits[k], st.L2.ByKind[k].Hits)
			eq(fmt.Sprintf("L2 %v misses", k), c.l2Miss[k], st.L2.ByKind[k].Misses())
		}
		eq("TLB hits", c.kinds[probe.EvTLBHit], st.TLB.Hits)
		eq("TLB misses", c.kinds[probe.EvTLBMiss], st.TLB.Misses)
		eq("context switches", c.kinds[probe.EvCtxSwitch], st.CtxSwitches)
		eq("write-backs", c.kinds[probe.EvWriteBack], st.WriteBacks)
		eq("swapped write-backs", c.swapped, st.SwappedWriteBacks)
		eq("eager-flush write-backs", c.eager, st.EagerFlushWriteBacks)
		eq("inclusion invalidations", c.kinds[probe.EvInclusionInval], st.InclusionInvals)
		eq("buffer stalls", c.kinds[probe.EvWBStall], st.BufferStalls)
		eq("victim hits", c.kinds[probe.EvVictimHit], st.VictimHits)
		eq("victim inserts", c.kinds[probe.EvVictimInsert], st.VictimInserts)
		eq("RLT evictions", c.kinds[probe.EvRLTEvict], st.RLTEvictions)
		for syn, k := range synKinds {
			eq(syn.String(), c.kinds[k], st.Synonyms[syn])
		}
		var coh uint64
		for _, k := range cohKinds {
			coh += c.kinds[k]
		}
		eq("coherence messages to L1", coh, st.Coherence.Total())

		// When a cycle engine rode the run, the timing events' durations
		// must sum to exactly the engine's per-CPU cycle counters.
		if eng := sys.Cycles(); eng != nil {
			at := eng.Agent(cpu)
			eq("access cycles", c.aux[probe.EvTimeAccess], at.Access)
			eq("TLB penalty cycles", c.aux[probe.EvTimeTLBMiss], at.TLB)
			eq("bus-wait cycles", c.aux[probe.EvTimeBusWait], at.BusWait)
			eq("stall cycles", c.aux[probe.EvTimeWBStall], at.Stall)
			eq("context-switch cycles", c.aux[probe.EvTimeCtxSwitch], at.Ctx)
			timeSum := c.aux[probe.EvTimeAccess] + c.aux[probe.EvTimeTLBMiss] +
				c.aux[probe.EvTimeBusWait] + c.aux[probe.EvTimeWBStall] +
				c.aux[probe.EvTimeCtxSwitch]
			eq("agent clock", timeSum, at.Clock)
		}
	}

	// Bus transactions are attributed to the issuing agent; sum them.
	var busEv [4]uint64
	for _, c := range sink.cpus {
		busEv[0] += c.kinds[probe.EvBusRead]
		busEv[1] += c.kinds[probe.EvBusReadMod]
		busEv[2] += c.kinds[probe.EvBusInvalidate]
		busEv[3] += c.kinds[probe.EvBusUpdate]
	}
	bs := sys.Bus().Stats()
	for i, kind := range []bus.Kind{bus.Read, bus.ReadMod, bus.Invalidate, bus.Update} {
		if busEv[i] != bs.Count(kind) {
			t.Errorf("bus %v: events %d, stats %d", kind, busEv[i], bs.Count(kind))
		}
	}

	// The run must actually exercise the machinery it claims to check.
	// (Write-through L1 lines are never dirty, so no write-backs there.)
	total := pr.Counts()
	if total.Of(probe.EvL1Miss) == 0 || total.Of(probe.EvCtxSwitch) == 0 ||
		(!cfg.L1WriteThrough && total.Of(probe.EvWriteBack) == 0) {
		t.Errorf("workload too small to exercise the hierarchy: %v", total.Map())
	}
	if cfg.VictimEntries > 0 && total.Of(probe.EvVictimInsert) == 0 {
		t.Errorf("victim cache configured but never filled: %v", total.Map())
	}
	if cfg.Organization == vrsim.VRRLT && total.Of(probe.EvRLTEvict) == 0 {
		t.Errorf("RLT configured but never evicted: %v", total.Map())
	}
}

func probeTestConfig(org vrsim.Organization) vrsim.Config {
	return vrsim.Config{
		Organization: org,
		L1:           vrsim.Geometry{Size: 1 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 8 << 10, Block: 32, Assoc: 1},
	}
}

func TestProbeEventsMatchStats(t *testing.T) {
	for _, org := range []vrsim.Organization{vrsim.VR, vrsim.RRInclusion, vrsim.RRNoInclusion, vrsim.VRRLT} {
		t.Run(org.String(), func(t *testing.T) {
			cfg := probeTestConfig(org)
			if org == vrsim.VRRLT {
				cfg.RLTEntries = 16 // under-provisioned: capacity evictions occur
			}
			checkConsistency(t, cfg)
		})
	}
}

func TestProbeEventsMatchStatsVariants(t *testing.T) {
	eager := probeTestConfig(vrsim.VR)
	eager.EagerCtxFlush = true
	update := probeTestConfig(vrsim.VR)
	update.Protocol = vrsim.WriteUpdate
	wthrough := probeTestConfig(vrsim.VR)
	wthrough.L1WriteThrough = true
	wthrough.WriteBufDepth = 2
	pid := probeTestConfig(vrsim.VR)
	pid.PIDTagged = true
	vrVictim := probeTestConfig(vrsim.VR)
	vrVictim.VictimEntries = 4
	niVictim := probeTestConfig(vrsim.RRNoInclusion)
	niVictim.VictimEntries = 4
	rltVictim := probeTestConfig(vrsim.VRRLT)
	rltVictim.RLTEntries = 16
	rltVictim.VictimEntries = 4
	wtVictim := probeTestConfig(vrsim.VR)
	wtVictim.L1WriteThrough = true
	wtVictim.WriteBufDepth = 2
	wtVictim.VictimEntries = 4
	cases := map[string]vrsim.Config{
		"eager-flush":          eager,
		"write-update":         update,
		"write-through":        wthrough,
		"pid-tagged":           pid,
		"vr-victim":            vrVictim,
		"noincl-victim":        niVictim,
		"rlt-victim":           rltVictim,
		"write-through-victim": wtVictim,
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) { checkConsistency(t, cfg) })
	}
}

// TestProbeEventsMatchStatsBatched runs the same consistency check through
// the sweep engine's batched broadcast path: two identically configured
// probed machines share one generated trace, each must (a) keep its event
// stream consistent with its counters and (b) tally exactly the same events
// as a sequential reference run of the same configuration.
func TestProbeEventsMatchStatsBatched(t *testing.T) {
	wl := vrsim.PopsWorkload().Scaled(0.01)

	newProbed := func() (vrsim.Config, *probe.Probe, *tallySink) {
		cfg := probeTestConfig(vrsim.VR)
		cfg.CPUs = wl.CPUs
		pr := probe.New(64)
		sink := &tallySink{cpus: map[int]*cpuTally{}}
		pr.AddSink(sink)
		cfg.Probe = pr
		eng, err := vrsim.NewCycleEngine(timingParams(), pr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cycles = eng
		return cfg, pr, sink
	}

	// Sequential reference run.
	refCfg, refPr, refSink := newProbed()
	refSys, err := vrsim.New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vrsim.RunWorkload(refSys, wl); err != nil {
		t.Fatal(err)
	}
	refPr.Flush()

	// Two identical machines driven by one trace pass through the sweep.
	const n = 2
	systems := make([]*vrsim.System, n)
	prs := make([]*probe.Probe, n)
	sinks := make([]*tallySink, n)
	cfgs := make([]vrsim.Config, n)
	for i := range systems {
		cfgs[i], prs[i], sinks[i] = newProbed()
		sys, err := vrsim.New(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
			t.Fatal(err)
		}
		systems[i] = sys
	}
	gen, err := vrsim.NewWorkload(wl)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Run(gen, systems, sweep.Options{BatchSize: 128}); err != nil {
		t.Fatal(err)
	}

	for i, sys := range systems {
		prs[i].Flush()
		verifyEventsMatchStats(t, cfgs[i], sys, prs[i], sinks[i])
		if got, want := len(sinks[i].cpus), len(refSink.cpus); got != want {
			t.Errorf("system %d: events from %d CPUs, reference saw %d", i, got, want)
		}
		for cpu, want := range refSink.cpus {
			if got := sinks[i].of(cpu); *got != *want {
				t.Errorf("system %d cpu %d: batched tally diverged from sequential run\n got %+v\nwant %+v",
					i, cpu, *got, *want)
			}
		}
	}
}
