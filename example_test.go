package vrsim_test

import (
	"fmt"
	"log"

	vrsim "repro"
)

// ExampleAccessTime evaluates the paper's Section 4 access-time equation.
func ExampleAccessTime() {
	p := vrsim.DefaultTimeParams(0.9, 0.5) // h1=0.9, h2=0.5, t1=1, t2=4, tm=20
	fmt.Printf("Tacc = %.2f cycles\n", vrsim.AccessTime(p))
	// Output: Tacc = 2.10 cycles
}

// ExampleCrossover finds the translation penalty at which the V-R
// organization overtakes an R-R hierarchy with better hit ratios — the
// paper's Figure 6 analysis.
func ExampleCrossover() {
	vr := vrsim.DefaultTimeParams(0.888, 0.585)
	rr := vrsim.DefaultTimeParams(0.908, 0.498)
	fmt.Printf("V-R wins once translation slows the R-cache by %.1f%%\n",
		100*vrsim.Crossover(vr, rr))
	// Output: V-R wins once translation slows the R-cache by 7.1%
}

// ExampleSystem_Apply drives individual references through a machine.
func ExampleSystem_Apply() {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         1,
		Organization: vrsim.VR,
		L1:           vrsim.Geometry{Size: 1 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 8 << 10, Block: 32, Assoc: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	w, _ := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x1000})
	r, _ := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x1000})
	fmt.Printf("write stamped token %d; read hit L%d and observed token %d\n",
		w.Token, r.Level(), r.Token)
	// Output: write stamped token 1; read hit L1 and observed token 1
}

// ExampleNew builds the paper's V-R machine and runs a scaled-down
// pops-like workload.
func ExampleNew() {
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         4,
		Organization: vrsim.VR,
		L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vrsim.RunWorkload(sys, vrsim.PopsWorkload().Scaled(0.01)); err != nil {
		log.Fatal(err)
	}
	// Hit ratios depend on the (deterministic) workload; report a stable
	// derived fact instead of raw numbers.
	agg := sys.Aggregate()
	fmt.Println("ran:", sys.Refs() > 0)
	fmt.Println("h1 in (0.5, 1):", agg.H1 > 0.5 && agg.H1 < 1)
	// Output:
	// ran: true
	// h1 in (0.5, 1): true
}

// ExampleTracerFunc watches the Table 4 interface signals of a synonym
// resolution.
func ExampleTracerFunc() {
	var kinds []string
	sys, err := vrsim.New(vrsim.Config{
		CPUs:         1,
		Organization: vrsim.VR,
		PageSize:     4096,
		L1:           vrsim.Geometry{Size: 8 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 64 << 10, Block: 32, Assoc: 1},
		Tracer: vrsim.TracerFunc(func(s vrsim.Signal) {
			kinds = append(kinds, s.Kind.String())
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	// One physical page under two virtual names in different V-cache sets.
	seg := sys.MMU().NewSegment(4096)
	if err := sys.MMU().MapShared(1, 0x10000, seg); err != nil {
		log.Fatal(err)
	}
	if err := sys.MMU().MapShared(1, 0x31000, seg); err != nil {
		log.Fatal(err)
	}
	sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x10000})
	kinds = nil // keep only the synonym access's signals
	sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x31000})
	for _, k := range kinds {
		fmt.Println(k)
	}
	// Output:
	// miss(v-pointer, r-pointer)
	// move(v-pointer)
}
