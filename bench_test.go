// Benchmarks: one per paper table and figure (each regenerates the
// artifact at 1% trace scale per iteration; run cmd/experiments at scale
// 1.0 for the full published trace lengths), plus reference-throughput
// microbenchmarks of the three cache organizations.
package vrsim_test

import (
	"fmt"
	"io"
	"testing"

	vrsim "repro"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

// benchScale keeps single benchmark iterations around tens of
// milliseconds.
const benchScale = 0.01

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }

func BenchmarkInclusionInvalidations(b *testing.B) { benchExperiment(b, "inclusion") }
func BenchmarkAssocBound(b *testing.B)             { benchExperiment(b, "assoc") }
func BenchmarkAssocBoundEmpirical(b *testing.B)    { benchExperiment(b, "assocbound") }
func BenchmarkWriteBufferDepth(b *testing.B)       { benchExperiment(b, "wbdepth") }
func BenchmarkEagerFlush(b *testing.B)             { benchExperiment(b, "eagerflush") }
func BenchmarkPIDTags(b *testing.B)                { benchExperiment(b, "pidtags") }
func BenchmarkUpdateProtocol(b *testing.B)         { benchExperiment(b, "protocol") }
func BenchmarkRelaxedReplacement(b *testing.B)     { benchExperiment(b, "replacement") }
func BenchmarkWritePolicy(b *testing.B)            { benchExperiment(b, "writepolicy") }
func BenchmarkScaling(b *testing.B)                { benchExperiment(b, "scaling") }
func BenchmarkBandwidth(b *testing.B)              { benchExperiment(b, "bandwidth") }
func BenchmarkAssocSweep(b *testing.B)             { benchExperiment(b, "assocsweep") }
func BenchmarkPageSize(b *testing.B)               { benchExperiment(b, "pagesize") }
func BenchmarkTLBPressure(b *testing.B)            { benchExperiment(b, "tlb") }

// benchOrganization measures raw simulation throughput in references per
// second for one cache organization.
func benchOrganization(b *testing.B, org vrsim.Organization) {
	b.Helper()
	wl := vrsim.PopsWorkload().Scaled(benchScale)
	b.ReportAllocs()
	var refs uint64
	for i := 0; i < b.N; i++ {
		sys, err := vrsim.New(vrsim.Config{
			CPUs:         wl.CPUs,
			Organization: org,
			L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
			L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := vrsim.RunWorkload(sys, wl); err != nil {
			b.Fatal(err)
		}
		refs += sys.Refs()
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkThroughputVR(b *testing.B)            { benchOrganization(b, vrsim.VR) }
func BenchmarkThroughputRRInclusion(b *testing.B)   { benchOrganization(b, vrsim.RRInclusion) }
func BenchmarkThroughputRRNoInclusion(b *testing.B) { benchOrganization(b, vrsim.RRNoInclusion) }

// benchProbed is benchOrganization with the observability layer on:
// counts-only (a probe with no sinks) or with a windowed-metrics sink
// consuming the full event stream. BenchmarkThroughput* above is the
// nil-probe baseline the <5% disabled-overhead budget is measured against.
func benchProbed(b *testing.B, org vrsim.Organization, sink bool) {
	b.Helper()
	wl := vrsim.PopsWorkload().Scaled(benchScale)
	b.ReportAllocs()
	var refs uint64
	for i := 0; i < b.N; i++ {
		pr := vrsim.NewProbe(0)
		if sink {
			pr.AddSink(vrsim.NewMetricWindows(1000))
		}
		sys, err := vrsim.New(vrsim.Config{
			CPUs:         wl.CPUs,
			Organization: org,
			L1:           vrsim.Geometry{Size: 16 << 10, Block: 16, Assoc: 1},
			L2:           vrsim.Geometry{Size: 256 << 10, Block: 32, Assoc: 1},
			Probe:        pr,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := vrsim.RunWorkload(sys, wl); err != nil {
			b.Fatal(err)
		}
		if err := pr.Close(); err != nil {
			b.Fatal(err)
		}
		refs += sys.Refs()
	}
	b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
}

func BenchmarkThroughputVRProbeCounts(b *testing.B)  { benchProbed(b, vrsim.VR, false) }
func BenchmarkThroughputVRProbeWindows(b *testing.B) { benchProbed(b, vrsim.VR, true) }

// sweepBenchConfigs deals out n distinct machine configurations, cycling
// organizations and size pairs the way the paper's tables do.
func sweepBenchConfigs(n, cpus int) []vrsim.Config {
	orgs := []vrsim.Organization{vrsim.VR, vrsim.RRInclusion, vrsim.RRNoInclusion}
	pairs := [][2]uint64{
		{4 << 10, 64 << 10}, {8 << 10, 128 << 10}, {16 << 10, 256 << 10},
		{4 << 10, 128 << 10}, {8 << 10, 256 << 10}, {16 << 10, 512 << 10},
	}
	cfgs := make([]vrsim.Config, n)
	for i := range cfgs {
		p := pairs[(i/len(orgs))%len(pairs)]
		cfgs[i] = vrsim.Config{
			CPUs:         cpus,
			Organization: orgs[i%len(orgs)],
			L1:           vrsim.Geometry{Size: p[0], Block: 16, Assoc: 1},
			L2:           vrsim.Geometry{Size: p[1], Block: 32, Assoc: 1},
		}
	}
	return cfgs
}

// BenchmarkSweepNConfigs measures the single-pass sweep engine: one trace
// generation feeding N simulated configurations. refs/s is the aggregate
// across all N systems; the scaling of interest is wall time versus N,
// compared with N sequential runs each regenerating the trace.
func BenchmarkSweepNConfigs(b *testing.B) {
	for _, n := range []int{1, 2, 6, 18} {
		b.Run(fmt.Sprintf("%d", n), func(b *testing.B) {
			wl := vrsim.PopsWorkload().Scaled(benchScale)
			cfgs := sweepBenchConfigs(n, wl.CPUs)
			b.ReportAllocs()
			var refs uint64
			for i := 0; i < b.N; i++ {
				systems := make([]*vrsim.System, n)
				for j, cfg := range cfgs {
					sys, err := vrsim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
						b.Fatal(err)
					}
					systems[j] = sys
				}
				gen, err := vrsim.NewWorkload(wl)
				if err != nil {
					b.Fatal(err)
				}
				if err := sweep.Run(gen, systems, sweep.Options{}); err != nil {
					b.Fatal(err)
				}
				for _, sys := range systems {
					refs += sys.Refs()
				}
			}
			b.ReportMetric(float64(refs)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkTraceGeneration measures the synthetic workload generator
// alone.
func BenchmarkTraceGeneration(b *testing.B) {
	wl := vrsim.PopsWorkload().Scaled(benchScale)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen, err := vrsim.NewWorkload(wl)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := gen.Next(); err != nil {
				break
			}
		}
	}
}
