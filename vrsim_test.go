package vrsim_test

import (
	"math"
	"testing"

	vrsim "repro"
)

func smallConfig(org vrsim.Organization) vrsim.Config {
	return vrsim.Config{
		CPUs:         2,
		Organization: org,
		L1:           vrsim.Geometry{Size: 1 << 10, Block: 16, Assoc: 1},
		L2:           vrsim.Geometry{Size: 8 << 10, Block: 32, Assoc: 1},
		CheckOracle:  true,
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, err := vrsim.New(smallConfig(vrsim.VR))
	if err != nil {
		t.Fatal(err)
	}
	wl := vrsim.PopsWorkload().Scaled(0.002)
	wl.CPUs = 2 // match the machine
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	agg := sys.Aggregate()
	if agg.H1 <= 0.3 || agg.H1 >= 1 {
		t.Errorf("implausible h1 = %v", agg.H1)
	}
	if sys.Refs() == 0 {
		t.Error("no references ran")
	}
}

func TestPublicAPIAllOrganizations(t *testing.T) {
	for _, org := range []vrsim.Organization{vrsim.VR, vrsim.RRInclusion, vrsim.RRNoInclusion} {
		sys, err := vrsim.New(smallConfig(org))
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		wl := vrsim.ThorWorkload().Scaled(0.001)
		wl.CPUs = 2
		if err := vrsim.RunWorkload(sys, wl); err != nil {
			t.Fatalf("%v: %v", org, err)
		}
	}
}

func TestManualTrace(t *testing.T) {
	sys, err := vrsim.New(smallConfig(vrsim.VR))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Write, PID: 1, Addr: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Apply(vrsim.Ref{CPU: 0, Kind: vrsim.Read, PID: 1, Addr: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.L1Hit || r.Token != w.Token {
		t.Errorf("read back: %+v, wrote token %d", r, w.Token)
	}
}

func TestTimeModelReexports(t *testing.T) {
	vr := vrsim.DefaultTimeParams(0.88, 0.55)
	rr := vrsim.DefaultTimeParams(0.90, 0.50)
	if vrsim.AccessTime(vr) <= 0 {
		t.Error("AccessTime broken")
	}
	pts := vrsim.Curve(vr, rr, 0.1, 5)
	if len(pts) != 6 {
		t.Errorf("Curve points = %d", len(pts))
	}
	x := vrsim.Crossover(vr, rr)
	if math.IsNaN(x) {
		t.Error("Crossover returned NaN")
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	bad := vrsim.PopsWorkload()
	bad.InstrFrac = 0.99
	if _, err := vrsim.NewWorkload(bad); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestStatsExposure(t *testing.T) {
	sys, err := vrsim.New(smallConfig(vrsim.VR))
	if err != nil {
		t.Fatal(err)
	}
	wl := vrsim.AbaqusWorkload().Scaled(0.002)
	if err := vrsim.RunWorkload(sys, wl); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats(0)
	if st.CtxSwitches == 0 {
		t.Error("abaqus-like workload should context switch")
	}
	if st.L1.Overall().Total == 0 {
		t.Error("no L1 accesses recorded")
	}
}
