// Command benchguard compares the sweep engine's current throughput against
// the recorded baseline in BENCH_sweep.json and fails on a >10% regression.
// It runs BenchmarkSweepNConfigs a few times and takes the best run, so a
// single noisy iteration on a loaded machine does not fail the build; a
// real regression shows up in every run.
//
// Besides the pass/fail gate, every run is appended to a trajectory file
// (BENCH_history.json by default) so throughput trends across PRs stay
// visible instead of collapsing into a single boolean.
//
// Usage (from the repository root, as ci.sh does):
//
//	go run ./cmd/benchguard
//	go run ./cmd/benchguard -count 4 -threshold 0.85 -history ""
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
)

type options struct {
	baseline    string
	history     string
	config      string
	count       int
	threshold   float64
	trendWindow int
	verbose     bool
}

// historyEntry is one appended BENCH_history.json record.
type historyEntry struct {
	Time       string  `json:"time"` // RFC 3339, UTC
	Config     string  `json:"config"`
	RefsPerSec float64 `json:"refsPerSec"` // best of -count runs
	Baseline   float64 `json:"baseline"`
	Threshold  float64 `json:"threshold"`
	Pass       bool    `json:"pass"`
	GoVersion  string  `json:"goVersion"`
	NumCPU     int     `json:"numCPU"`
	Gomaxprocs int     `json:"gomaxprocs"`
	// GateSkipped explains why the pass/fail gate did not apply (e.g. the
	// baseline was recorded on a different core count); empty otherwise.
	GateSkipped string `json:"gateSkipped,omitempty"`
	// LatencyMS is the job-server submit→first-result latency (vrsimd
	// entries only): the wall-clock time from a job's admission to its
	// report being readable, best of the measured runs.
	LatencyMS float64 `json:"latencyMS,omitempty"`
}

// appendHistory adds one entry to the trajectory file (created on first
// use). The file is a plain JSON array so it stays trivially parseable and
// diffable.
func appendHistory(path string, e historyEntry) error {
	var entries []historyEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return err
	}
	entries = append(entries, e)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	var o options
	flag.StringVar(&o.baseline, "baseline", "BENCH_sweep.json", "baseline file")
	flag.StringVar(&o.history, "history", "BENCH_history.json",
		"append each run to this trajectory file (\"\" disables)")
	flag.StringVar(&o.config, "config", "6", "BenchmarkSweepNConfigs sub-benchmark to guard")
	flag.IntVar(&o.count, "count", 3, "benchmark repetitions (best run wins)")
	flag.Float64Var(&o.threshold, "threshold", 0.9, "fail below baseline*threshold")
	flag.IntVar(&o.trendWindow, "trend-window", 5,
		"warn when the last N history entries decline monotonically (0 disables)")
	flag.BoolVar(&o.verbose, "v", false, "print raw benchmark output")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	want, baseCPUs, err := baselineRefsPerSec(o.baseline, o.config)
	if err != nil {
		return err
	}
	// Throughput on N cores is not comparable to a baseline recorded on M:
	// the gate would fail (or pass) on hardware, not on the code. Refuse the
	// diff, but still run and record the measurement so the trajectory keeps
	// a per-host record.
	skipped := ""
	if baseCPUs != 0 && baseCPUs != runtime.NumCPU() {
		skipped = fmt.Sprintf("baseline recorded on %d CPUs, this host has %d",
			baseCPUs, runtime.NumCPU())
	}
	out, err := runBenchmark(o)
	if err != nil {
		return err
	}
	if o.verbose {
		fmt.Print(out)
	}
	best, runs, err := bestRefsPerSec(out, o.config)
	if err != nil {
		return err
	}
	floor := want * o.threshold
	fmt.Printf("benchguard: sweep/%s best of %d runs: %.0f refs/s (baseline %.0f, floor %.0f)\n",
		o.config, runs, best, want, floor)
	if o.history != "" {
		// A failing run is recorded too: the trajectory must show the dip,
		// not just the runs that survived the gate.
		e := historyEntry{
			Time:        time.Now().UTC().Format(time.RFC3339),
			Config:      o.config,
			RefsPerSec:  best,
			Baseline:    want,
			Threshold:   o.threshold,
			Pass:        skipped != "" || best >= floor,
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Gomaxprocs:  runtime.GOMAXPROCS(0),
			GateSkipped: skipped,
		}
		if err := appendHistory(o.history, e); err != nil {
			return err
		}
		// Trend check: a slow leak of throughput passes every per-PR gate
		// (each dip under 10%) yet compounds across PRs. Warn — never fail —
		// when the recorded trajectory declines monotonically.
		if warn := throughputTrendWarning(o.history, o.config, o.trendWindow); warn != "" {
			fmt.Printf("benchguard: WARNING: %s\n", warn)
		}
	}
	// The job-server latency rides along in the same trajectory file: no
	// gate (latency floors on shared machines gate the weather, not the
	// code), but the trend across PRs stays on record.
	if o.history != "" {
		lat, err := measureJobLatency(o.count)
		if err != nil {
			return fmt.Errorf("job-server latency: %w", err)
		}
		fmt.Printf("benchguard: vrsimd submit-to-first-result best of %d runs: %.1fms\n",
			o.count, lat)
		e := historyEntry{
			Time:       time.Now().UTC().Format(time.RFC3339),
			Config:     "vrsimd-submit",
			LatencyMS:  lat,
			Pass:       true,
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Gomaxprocs: runtime.GOMAXPROCS(0),
		}
		if err := appendHistory(o.history, e); err != nil {
			return err
		}
	}
	if skipped != "" {
		fmt.Printf("benchguard: gate skipped: %s\n", skipped)
		return nil
	}
	if best < floor {
		return fmt.Errorf("throughput regression: %.0f refs/s is below %.0f (%.0f%% of the %.0f baseline)",
			best, floor, o.threshold*100, want)
	}
	return nil
}

// throughputTrendWarning inspects the trajectory file just appended to and
// returns a warning when the last window entries for this config decline
// monotonically (strictly, entry over entry). It is advisory only: any error
// or an inconclusive trajectory returns "".
func throughputTrendWarning(path, config string, window int) string {
	if window < 2 {
		return ""
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	var entries []historyEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return ""
	}
	var series []float64
	for _, e := range entries {
		if e.Config == config && e.RefsPerSec > 0 {
			series = append(series, e.RefsPerSec)
		}
	}
	if len(series) < window {
		return ""
	}
	series = series[len(series)-window:]
	for i := 1; i < len(series); i++ {
		if series[i] >= series[i-1] {
			return ""
		}
	}
	return fmt.Sprintf("sweep/%s throughput declined across the last %d recorded runs "+
		"(%.0f → %.0f refs/s, -%.1f%%): each step passed the gate, the trend did not",
		config, window, series[0], series[len(series)-1],
		100*(1-series[len(series)-1]/series[0]))
}

// measureJobLatency runs an in-process job server and measures the
// wall-clock time from Submit returning to the job's report being readable
// — the service-level "how long until a small job's first result" figure.
// Best of count runs, in milliseconds.
func measureJobLatency(count int) (float64, error) {
	dir, err := os.MkdirTemp("", "benchguard-jobs-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	m, err := jobs.Open(jobs.Options{Dir: dir, Workers: 1})
	if err != nil {
		return 0, err
	}
	defer m.Close()
	config := []byte(`{"kind":"run","preset":"pops","scale":0.01}`)
	best := 0.0
	for i := 0; i < count; i++ {
		start := time.Now()
		st, err := m.Submit(config)
		if err != nil {
			return 0, err
		}
		for {
			cur, ok := m.Get(st.ID)
			if !ok {
				return 0, fmt.Errorf("job %s vanished", st.ID)
			}
			if jobs.Terminal(cur.State) {
				if cur.State != jobs.StateDone {
					return 0, fmt.Errorf("job %s: %s (%s)", st.ID, cur.State, cur.Error)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
		if _, err := m.Report(st.ID); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// baselineRefsPerSec reads the recorded aggregate throughput for one
// sub-benchmark from the baseline file, along with the core count the
// baseline was measured on (0 when the file predates that field).
func baselineRefsPerSec(path, config string) (float64, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var doc struct {
		Sweep  map[string]float64 `json:"BenchmarkSweepNConfigs_aggregate_refs_per_sec"`
		NumCPU int                `json:"numCPU"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	want, ok := doc.Sweep[config]
	if !ok || want <= 0 {
		return 0, 0, fmt.Errorf("%s: no baseline for sweep config %q", path, config)
	}
	return want, doc.NumCPU, nil
}

func runBenchmark(o options) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", fmt.Sprintf("^BenchmarkSweepNConfigs$/^%s$", o.config),
		"-benchtime", "1x", "-count", strconv.Itoa(o.count), ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %w\n%s", err, out)
	}
	return string(out), nil
}

// bestRefsPerSec parses `go test -bench` output lines like
//
//	BenchmarkSweepNConfigs/6-8   1   170ms/op   6619246 refs/s   0 B/op
//
// and returns the best refs/s across repetitions.
func bestRefsPerSec(out, config string) (best float64, runs int, err error) {
	prefix := "BenchmarkSweepNConfigs/" + config
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		f := strings.Fields(line)
		for i := 1; i < len(f); i++ {
			if f[i] != "refs/s" {
				continue
			}
			v, perr := strconv.ParseFloat(f[i-1], 64)
			if perr != nil {
				return 0, 0, fmt.Errorf("bad refs/s value in %q: %v", line, perr)
			}
			runs++
			if v > best {
				best = v
			}
		}
	}
	if runs == 0 {
		return 0, 0, fmt.Errorf("no %s refs/s samples in benchmark output:\n%s", prefix, out)
	}
	return best, runs, nil
}
