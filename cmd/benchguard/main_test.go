package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkSweepNConfigs/6         	       1	  32134336 ns/op	   6135806 refs/s	 9134168 B/op
BenchmarkSweepNConfigs/6         	       1	  30087961 ns/op	   6553100 refs/s	 9130808 B/op
BenchmarkSweepNConfigs/18        	       1	  40087961 ns/op	   5193864 refs/s	 9130808 B/op
PASS
`

func TestBestRefsPerSec(t *testing.T) {
	best, runs, err := bestRefsPerSec(sampleOutput, "6")
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 || best != 6553100 {
		t.Fatalf("best=%v runs=%d, want 6553100 over 2", best, runs)
	}
	// The /18 line must not leak into the /6 guard, nor the reverse.
	best, runs, err = bestRefsPerSec(sampleOutput, "18")
	if err != nil || runs != 1 || best != 5193864 {
		t.Fatalf("config 18: best=%v runs=%d err=%v", best, runs, err)
	}
	if _, _, err := bestRefsPerSec("PASS\n", "6"); err == nil {
		t.Fatal("no samples must be an error")
	}
	if _, _, err := bestRefsPerSec("BenchmarkSweepNConfigs/6 1 bogus refs/s\n", "6"); err == nil {
		t.Fatal("unparseable value must be an error")
	}
}

func TestBaselineRefsPerSec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `{"BenchmarkSweepNConfigs_aggregate_refs_per_sec": {"6": 6619246}, "numCPU": 1}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, cpus, err := baselineRefsPerSec(path, "6")
	if err != nil || got != 6619246 || cpus != 1 {
		t.Fatalf("got %v on %d CPUs, %v", got, cpus, err)
	}
	if _, _, err := baselineRefsPerSec(path, "99"); err == nil {
		t.Fatal("missing config must be an error")
	}
	if _, _, err := baselineRefsPerSec(filepath.Join(t.TempDir(), "nope.json"), "6"); err == nil {
		t.Fatal("missing file must be an error")
	}
	// A baseline file without the core-count field (an older repo state)
	// still parses, with cpus 0 meaning "unknown, do not refuse the diff".
	old := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(old, []byte(`{"BenchmarkSweepNConfigs_aggregate_refs_per_sec": {"6": 1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, cpus, err := baselineRefsPerSec(old, "6"); err != nil || cpus != 0 {
		t.Fatalf("legacy baseline: cpus=%d err=%v", cpus, err)
	}
}

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	e1 := historyEntry{Time: "2026-08-08T00:00:00Z", Config: "6",
		RefsPerSec: 6500000, Baseline: 6619246, Threshold: 0.9, Pass: true, GoVersion: "go1.24.0"}
	if err := appendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	e2 := e1
	e2.RefsPerSec, e2.Pass = 1000, false
	if err := appendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []historyEntry
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("trajectory mismatch: %+v", got)
	}
	// Corrupt file: the append must fail loudly, not silently truncate the
	// trajectory.
	if err := os.WriteFile(path, []byte("{not an array"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, e1); err == nil {
		t.Fatal("append to a corrupt trajectory must error")
	}
}

// TestGuardAgainstRealBaseline exercises the full path against the
// repository baseline without spawning go test: only the parse + compare.
func TestGuardComparison(t *testing.T) {
	want := 6619246.0
	best := 6000000.0
	if best >= want*0.9 {
		// 6000000 < 5957321 is false — this is above the floor.
	} else {
		t.Fatal("arithmetic sanity")
	}
	if 5000000.0 >= want*0.9 {
		t.Fatal("a 25% regression must be below the floor")
	}
}

// TestThroughputTrendWarning: the advisory monotonic-decline check fires
// only on a strict entry-over-entry decline of the last window entries for
// the requested config, and stays silent on every inconclusive input.
func TestThroughputTrendWarning(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, series map[string][]float64) string {
		var entries []historyEntry
		// Interleave configs the way real appends do: one entry per run.
		for cfg, vals := range series {
			for _, v := range vals {
				entries = append(entries, historyEntry{Config: cfg, RefsPerSec: v, Pass: true})
			}
		}
		data, err := json.Marshal(entries)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	declining := write("decline.json", map[string][]float64{
		"18": {100, 99, 98, 97, 96},
	})
	if warn := throughputTrendWarning(declining, "18", 5); warn == "" {
		t.Error("5-entry monotonic decline must warn")
	} else if !strings.Contains(warn, "sweep/18") || !strings.Contains(warn, "last 5") {
		t.Errorf("warning %q missing config or window", warn)
	}
	// A single up-tick anywhere breaks monotonicity.
	if warn := throughputTrendWarning(write("uptick.json", map[string][]float64{
		"18": {100, 99, 99.5, 97, 96},
	}), "18", 5); warn != "" {
		t.Errorf("non-monotonic series warned: %q", warn)
	}
	// Decline on another config must not implicate this one.
	if warn := throughputTrendWarning(declining, "6", 5); warn != "" {
		t.Errorf("config with no entries warned: %q", warn)
	}
	// Fewer entries than the window is inconclusive.
	if warn := throughputTrendWarning(declining, "18", 6); warn != "" {
		t.Errorf("short series warned: %q", warn)
	}
	// Only the trailing window counts: an old decline followed by recovery
	// is not a trend.
	if warn := throughputTrendWarning(write("recovered.json", map[string][]float64{
		"18": {100, 99, 98, 97, 96, 100, 99, 98},
	}), "18", 5); warn != "" {
		t.Errorf("recovered series warned: %q", warn)
	}
	// window < 2 disables the check; missing or corrupt files are advisory
	// no-ops.
	if warn := throughputTrendWarning(declining, "18", 0); warn != "" {
		t.Errorf("window=0 warned: %q", warn)
	}
	if warn := throughputTrendWarning(filepath.Join(dir, "absent.json"), "18", 5); warn != "" {
		t.Errorf("missing file warned: %q", warn)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not an array"), 0o644); err != nil {
		t.Fatal(err)
	}
	if warn := throughputTrendWarning(corrupt, "18", 5); warn != "" {
		t.Errorf("corrupt file warned: %q", warn)
	}
}
