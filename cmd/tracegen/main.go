// Command tracegen emits synthetic multiprocessor traces in the binary or
// text trace format.
//
// Usage:
//
//	tracegen -preset pops -o pops.trc            # binary format
//	tracegen -preset abaqus -scale 0.1 -format text -o -   # text to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/tracegen"
)

func main() {
	preset := flag.String("preset", "pops", "workload preset: pops, thor or abaqus")
	scale := flag.Float64("scale", 1.0, "trace length scale factor")
	format := flag.String("format", "binary", "output format: binary, gzip or text")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	seed := flag.Int64("seed", 0, "override the preset's seed (0 = keep)")
	flag.Parse()

	if err := run(*preset, *scale, *format, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(preset string, scale float64, format, out string, seed int64) error {
	cfg, err := tracegen.PresetByName(preset)
	if err != nil {
		return err
	}
	if scale != 1 {
		cfg = cfg.Scaled(scale)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	gen, err := tracegen.New(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	var write func(trace.Ref) error
	var flush func() error
	switch format {
	case "binary":
		bw := trace.NewBinaryWriter(w)
		write, flush = bw.Write, bw.Flush
	case "gzip":
		gw := trace.NewGzipWriter(w)
		write, flush = gw.Write, gw.Close
	case "text":
		tw := trace.NewTextWriter(w)
		write, flush = tw.Write, tw.Flush
	default:
		return fmt.Errorf("unknown format %q", format)
	}

	for {
		ref, err := gen.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := write(ref); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	c := gen.Characteristics()
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d refs (%d instr, %d read, %d write), %d context switches\n",
		cfg.Name, c.TotalRefs, c.Instrs, c.Reads, c.Writes, c.CtxSwitches)
	return nil
}
