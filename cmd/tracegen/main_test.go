package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunBinary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trc")
	if err := run("pops", 0.0005, "binary", path, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.OpenBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("empty trace written")
	}
}

func TestRunGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trc.gz")
	if err := run("thor", 0.0005, "gzip", path, 7); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := trace.OpenBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("empty gzip trace")
	}
}

func TestRunText(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run("abaqus", 0.0005, "text", path, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	refs, err := trace.ReadAll(trace.NewTextReader(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("empty text trace")
	}
}

func TestSeedOverrideChangesTrace(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.trc")
	b := filepath.Join(dir, "b.trc")
	if err := run("pops", 0.0005, "binary", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("pops", 0.0005, "binary", b, 2); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) == string(db) {
		t.Error("different seeds produced identical traces")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 1, "binary", filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run("pops", 0.0005, "yaml", filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("pops", 0.0005, "binary", "/nonexistent/dir/x.trc", 0); err == nil {
		t.Error("unwritable path accepted")
	}
}
