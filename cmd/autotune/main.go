// Command autotune searches the two-level hierarchy design space and
// prints the Pareto frontier of measured access time against SRAM cost.
//
// Usage:
//
//	autotune -preset pops -scale 0.01
//	autotune -grammar space.json -preset thor -json frontier.json
//	autotune -preset pops -scale 0.003 -check-exhaustive
//	autotune -preset pops -scale 0.01 -cpuprofile cpu.pb.gz
//
// Without -grammar the paper grammar (1700+ candidates) is searched; pass
// a JSON grammar file to define a custom space. -check-exhaustive re-runs
// the search without pruning and fails if the frontiers differ — the
// pruning-soundness check CI runs on a small grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"

	"repro/internal/autotune"
	"repro/internal/tracegen"
)

func main() {
	var (
		grammarFile = flag.String("grammar", "", "JSON grammar file (default: the paper grammar)")
		preset      = flag.String("preset", "pops", "workload preset: thor | pops | abaqus")
		scale       = flag.Float64("scale", 0.01, "workload scale factor")
		probeRefs   = flag.Uint64("probe-refs", 0, "probe references per candidate (default: workload/8)")
		shards      = flag.Int("shards", 4, "probe windows per candidate")
		warmup      = flag.Uint64("warmup", 4096, "warm-up references per probe window")
		margin      = flag.Float64("margin", 0, "pruning margin in cycles (0 = auto, negative = none)")
		chunk       = flag.Int("chunk", 8, "candidates sharing one trace pass per cell")
		parallel    = flag.Int("parallel", 0, "worker goroutines (default GOMAXPROCS)")
		exhaustive  = flag.Bool("exhaustive", false, "measure every candidate exactly (no pruning)")
		checkExh    = flag.Bool("check-exhaustive", false, "also run exhaustively and fail if the frontiers differ")
		jsonOut     = flag.String("json", "", "write the result as JSON to this file ('-' = stdout)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if err := run(*grammarFile, *preset, *scale, *probeRefs, *shards, *warmup,
		*margin, *chunk, *parallel, *exhaustive, *checkExh, *jsonOut,
		*cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}
}

func run(grammarFile, preset string, scale float64, probeRefs uint64,
	shards int, warmup uint64, margin float64, chunk, parallel int,
	exhaustive, checkExh bool, jsonOut, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	g := autotune.PaperGrammar()
	if grammarFile != "" {
		data, err := os.ReadFile(grammarFile)
		if err != nil {
			return err
		}
		g = autotune.Grammar{}
		if err := json.Unmarshal(data, &g); err != nil {
			return fmt.Errorf("parse %s: %w", grammarFile, err)
		}
	}
	wl, err := tracegen.PresetByName(preset)
	if err != nil {
		return err
	}
	wl = wl.Scaled(scale)

	o := autotune.Options{
		Grammar:    g,
		Workload:   wl,
		ProbeRefs:  probeRefs,
		Shards:     shards,
		Warmup:     warmup,
		Margin:     margin,
		Chunk:      chunk,
		Parallel:   parallel,
		Exhaustive: exhaustive,
	}
	res, err := autotune.Search(o)
	if err != nil {
		return err
	}
	res.WriteText(os.Stdout)

	if checkExh && !exhaustive {
		fmt.Println("\nre-running exhaustively to check pruning soundness...")
		oe := o
		oe.Exhaustive = true
		exact, err := autotune.Search(oe)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(stripProbe(res.Frontier), stripProbe(exact.Frontier)) {
			return fmt.Errorf("pruned frontier differs from exhaustive\npruned:     %+v\nexhaustive: %+v",
				res.Frontier, exact.Frontier)
		}
		fmt.Printf("pruning sound: pruned frontier matches exhaustive (%d candidates, %d pruned)\n",
			res.Candidates, res.Pruned)
	}

	if jsonOut != "" {
		w := os.Stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := res.WriteJSON(w); err != nil {
			return err
		}
	}

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// stripProbe drops the probe column (absent from exhaustive results) so
// frontiers compare on (label, bits, exact Tacc) alone.
func stripProbe(pts []autotune.Point) []autotune.Point {
	out := make([]autotune.Point, len(pts))
	for i, p := range pts {
		p.ProbeTacc = 0
		out[i] = p
	}
	return out
}
