package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"16K", 16 << 10}, {"256k", 256 << 10}, {"2M", 2 << 20},
		{"512", 512}, {" 4K ", 4 << 10},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "K", "16Q", "-4K", "4.5K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

func TestParseOrg(t *testing.T) {
	cases := map[string]system.Organization{
		"vr": system.VR, "VR": system.VR,
		"rr": system.RRInclusion, "rrincl": system.RRInclusion,
		"rrnoincl": system.RRNoInclusion, "noincl": system.RRNoInclusion,
	}
	for in, want := range cases {
		got, err := parseOrg(in)
		if err != nil || got != want {
			t.Errorf("parseOrg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseOrg("bogus"); err == nil {
		t.Error("parseOrg(bogus): want error")
	}
}

// smallRun returns options for a tiny preset run; tests override fields.
func smallRun() options {
	return options{
		preset: "pops", org: "vr", l1: "4K", l2: "64K",
		b1: 16, b2: 32, a1: 1, a2: 1, scale: 0.001,
	}
}

func TestRunPreset(t *testing.T) {
	if err := run(smallRun()); err != nil {
		t.Fatal(err)
	}
}

func TestRunPresetJSON(t *testing.T) {
	o := smallRun()
	o.preset, o.org, o.jsonOut = "thor", "rr", true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	o := smallRun()
	o.chromeTrace = path
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

func TestRunEventsAndMetrics(t *testing.T) {
	o := smallRun()
	o.events = true
	o.eventsFilter = "synonym,coherence"
	o.metricsEvery = 100
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	o := smallRun()
	o.jsonOut = true
	o.metricsEvery = 50
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	cfg := tracegen.AbaqusLike().Scaled(0.001)
	gen, err := tracegen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f)
	for {
		ref, err := gen.Next()
		if err != nil {
			break
		}
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := smallRun()
	o.preset, o.traceFile, o.tracePreset, o.scale = "", path, "abaqus", 1
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimed(t *testing.T) {
	o := smallRun()
	o.timed = true
	o.t1, o.t2, o.tm = 1, 4, 20
	o.busMemOcc, o.busWBOcc, o.contention = 12, 4, true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o.jsonOut = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	mod := func(f func(*options)) options {
		o := smallRun()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
	}{
		{"both inputs", mod(func(o *options) { o.traceFile = "x.trc" })},
		{"no inputs", mod(func(o *options) { o.preset = "" })},
		{"bad org", mod(func(o *options) { o.org = "zz" })},
		{"bad size", mod(func(o *options) { o.l1 = "4Q" })},
		{"bad preset", mod(func(o *options) { o.preset = "nope" })},
		{"missing trace file", mod(func(o *options) { o.preset = ""; o.traceFile = "/nonexistent/x.trc" })},
		{"bad geometry", mod(func(o *options) { o.b1 = 100 })},
		{"bad events filter", mod(func(o *options) { o.events = true; o.eventsFilter = "bogus" })},
		{"filter without events", mod(func(o *options) { o.eventsFilter = "synonym" })},
		{"unwritable chrome trace", mod(func(o *options) { o.chromeTrace = "/nonexistent/dir/t.json" })},
		{"latency flag without -timed", mod(func(o *options) { o.tm = 40 })},
		{"bad latencies", mod(func(o *options) { o.timed = true; o.t1 = 0 })},
	}
	for _, c := range cases {
		if err := run(c.o); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare("pops", "4K", "64K", 16, 32, 1, 1, 0, 0.001); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareErrors(t *testing.T) {
	if err := runCompare("", "4K", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("compare without preset accepted")
	}
	if err := runCompare("nope", "4K", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := runCompare("pops", "4Q", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("bad size accepted")
	}
}
