package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"16K", 16 << 10}, {"256k", 256 << 10}, {"2M", 2 << 20},
		{"512", 512}, {" 4K ", 4 << 10},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "K", "16Q", "-4K", "4.5K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

func TestParseOrg(t *testing.T) {
	cases := map[string]struct {
		org system.Organization
		wt  bool
	}{
		"vr": {system.VR, false}, "VR": {system.VR, false},
		"rr": {system.RRInclusion, false}, "rrincl": {system.RRInclusion, false},
		"rrnoincl": {system.RRNoInclusion, false}, "noincl": {system.RRNoInclusion, false},
		"rlt":   {system.VRRLT, false},
		"vr-wt": {system.VR, true}, "rr-wt": {system.RRInclusion, true},
	}
	for in, want := range cases {
		org, wt, err := parseOrg(in)
		if err != nil || org != want.org || wt != want.wt {
			t.Errorf("parseOrg(%q) = %v, %v, %v; want %v, %v", in, org, wt, err, want.org, want.wt)
		}
	}
	if _, _, err := parseOrg("bogus"); err == nil {
		t.Error("parseOrg(bogus): want error")
	}
}

// smallRun returns options for a tiny preset run; tests override fields.
func smallRun() options {
	return options{
		preset: "pops", org: "vr", l1: "4K", l2: "64K",
		b1: 16, b2: 32, a1: 1, a2: 1, scale: 0.001,
	}
}

func TestRunPreset(t *testing.T) {
	if err := run(smallRun(), io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunPresetJSON(t *testing.T) {
	o := smallRun()
	o.preset, o.org, o.jsonOut = "thor", "rr", true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	o := smallRun()
	o.chromeTrace = path
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

func TestRunEventsAndMetrics(t *testing.T) {
	o := smallRun()
	o.events = true
	o.eventsFilter = "synonym,coherence"
	o.metricsEvery = 100
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	o := smallRun()
	o.jsonOut = true
	o.metricsEvery = 50
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	cfg := tracegen.AbaqusLike().Scaled(0.001)
	gen, err := tracegen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f)
	for {
		ref, err := gen.Next()
		if err != nil {
			break
		}
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	o := smallRun()
	o.preset, o.traceFile, o.tracePreset, o.scale = "", path, "abaqus", 1
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimed(t *testing.T) {
	o := smallRun()
	o.timed = true
	o.t1, o.t2, o.tm = 1, 4, 20
	o.busMemOcc, o.busWBOcc, o.contention = 12, 4, true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	o.jsonOut = true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	mod := func(f func(*options)) options {
		o := smallRun()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
	}{
		{"both inputs", mod(func(o *options) { o.traceFile = "x.trc" })},
		{"no inputs", mod(func(o *options) { o.preset = "" })},
		{"bad org", mod(func(o *options) { o.org = "zz" })},
		{"bad size", mod(func(o *options) { o.l1 = "4Q" })},
		{"bad preset", mod(func(o *options) { o.preset = "nope" })},
		{"missing trace file", mod(func(o *options) { o.preset = ""; o.traceFile = "/nonexistent/x.trc" })},
		{"bad geometry", mod(func(o *options) { o.b1 = 100 })},
		{"bad events filter", mod(func(o *options) { o.events = true; o.eventsFilter = "bogus" })},
		{"filter without events", mod(func(o *options) { o.eventsFilter = "synonym" })},
		{"unwritable chrome trace", mod(func(o *options) { o.chromeTrace = "/nonexistent/dir/t.json" })},
		{"latency flag without -timed", mod(func(o *options) { o.tm = 40 })},
		{"bad latencies", mod(func(o *options) { o.timed = true; o.t1 = 0 })},
		{"hist without -timed", mod(func(o *options) { o.hist = true })},
		{"unwritable snapshot", mod(func(o *options) { o.snapshot = "/nonexistent/dir/s.json" })},
		{"unusable http address", mod(func(o *options) { o.httpAddr = "256.0.0.1:bad" })},
	}
	for _, c := range cases {
		if err := run(c.o, io.Discard); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRunAuditClean(t *testing.T) {
	for _, org := range []string{"vr", "rr", "rrnoincl"} {
		o := smallRun()
		o.org, o.audit, o.auditEvery = org, true, 200
		var out bytes.Buffer
		if err := run(o, &out); err != nil {
			t.Fatalf("%s: clean run reported violations: %v", org, err)
		}
		if !strings.Contains(out.String(), "audit:") {
			t.Fatalf("%s: text report missing audit summary:\n%s", org, out.String())
		}
		if !strings.Contains(out.String(), " 0 violations") {
			t.Fatalf("%s: audit summary not clean:\n%s", org, out.String())
		}
	}
}

func TestRunSnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	o := smallRun()
	o.snapshot = path
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := audit.ParseJSON(f)
	if err != nil {
		t.Fatalf("snapshot file not parseable: %v", err)
	}
	if snap.Organization != "V-R" && snap.Organization != "vr" {
		t.Logf("organization label: %q", snap.Organization)
	}
	if len(snap.CPUs) == 0 {
		t.Fatal("snapshot has no CPUs")
	}
	if got := snap.Check(); len(got) != 0 {
		t.Fatalf("snapshot of a clean run has violations: %v", got)
	}
}

// TestRunJSONComposes drives every JSON-affecting feature at once and
// requires stdout to be exactly one well-formed document with the
// histogram, window, and audit output nested inside it.
func TestRunJSONComposes(t *testing.T) {
	o := smallRun()
	o.jsonOut = true
	o.metricsEvery = 100
	o.timed, o.hist = true, true
	o.t1, o.t2, o.tm = 1, 4, 20
	o.busMemOcc, o.busWBOcc, o.contention = 12, 4, true
	o.audit, o.auditEvery = true, 500
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if dec.More() {
		t.Fatalf("stdout holds more than one JSON document:\n%s", out.String())
	}
	res, err := report.ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Probe == nil || len(res.Probe.Windows) == 0 {
		t.Error("windows not nested in the JSON document")
	}
	if res.Monitor == nil || len(res.Monitor.Latency) == 0 {
		t.Error("latency summaries not nested in the JSON document")
	}
	if res.Monitor != nil && len(res.Monitor.Occupancy) == 0 {
		t.Error("occupancy not nested in the JSON document")
	}
	if res.Audit == nil || res.Audit.Audits == 0 {
		t.Error("audit tally not nested in the JSON document")
	}
	if res.Audit != nil && res.Audit.Violations != 0 {
		t.Errorf("clean run reported %d violations", res.Audit.Violations)
	}
	for _, s := range res.Monitor.Latency {
		if s.Kind == "access" && s.Count == 0 {
			t.Error("access histogram empty despite -hist")
		}
	}
}

func TestRunHistText(t *testing.T) {
	o := smallRun()
	o.timed, o.hist = true, true
	o.t1, o.t2, o.tm = 1, 4, 20
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "latency distributions (cycles):") {
		t.Fatalf("histogram table missing:\n%s", text)
	}
	if !strings.Contains(text, "access") {
		t.Fatalf("access row missing:\n%s", text)
	}
}

func TestRunHTTPMonitor(t *testing.T) {
	// The server lives for the duration of run(): it must bind, publish at
	// startup and on every window close, and shut down cleanly at the end
	// (monitor's own tests exercise the endpoints over a live listener).
	o := smallRun()
	o.httpAddr = "127.0.0.1:0"
	o.metricsEvery = 100
	o.audit = true
	if err := run(o, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare(smallRun()); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareErrors(t *testing.T) {
	mod := func(f func(*options)) options {
		o := smallRun()
		f(&o)
		return o
	}
	if err := runCompare(mod(func(o *options) { o.preset = "" })); err == nil {
		t.Error("compare without preset accepted")
	}
	if err := runCompare(mod(func(o *options) { o.preset = "nope" })); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := runCompare(mod(func(o *options) { o.l1 = "4Q" })); err == nil {
		t.Error("bad size accepted")
	}
}

// timedRun is smallRun with the cycle engine armed (telemetry needs it).
func timedRun() options {
	o := smallRun()
	o.timed = true
	o.t1, o.t2, o.tm = 1, 4, 20
	o.tlbPenalty = 8
	return o
}

func TestRunTelemetryErrors(t *testing.T) {
	mod := func(f func(*options)) options {
		o := smallRun()
		f(&o)
		return o
	}
	cases := []struct {
		name string
		o    options
	}{
		{"trace-spans without -timed", mod(func(o *options) { o.traceSpans = "x.json" })},
		{"attr without -timed", mod(func(o *options) { o.attr = true })},
		{"flightrec-latency without -timed", mod(func(o *options) { o.flightrecLat = 100 })},
		{"attr-out without -attr", mod(func(o *options) { o.attrOut = "x.txt" })},
		{"attr-out stdout with -json", mod(func(o *options) {
			o.timed, o.t1, o.t2, o.tm = true, 1, 4, 20
			o.attr, o.attrOut, o.jsonOut = true, "-", true
		})},
		{"inject-violation without audit", mod(func(o *options) { o.injectViolation = true })},
		{"telemetry with -checkpoint", mod(func(o *options) {
			o.timed, o.t1, o.t2, o.tm = true, 1, 4, 20
			o.attr = true
			o.checkpointFile, o.checkpointAt = "x.bin", 10
		})},
		{"telemetry with -shards", mod(func(o *options) {
			o.timed, o.t1, o.t2, o.tm = true, 1, 4, 20
			o.traceSpans, o.shards = "x.json", 2
		})},
		{"unwritable span file", mod(func(o *options) {
			o.timed, o.t1, o.t2, o.tm = true, 1, 4, 20
			o.traceSpans = "/nonexistent/dir/spans.json"
		})},
	}
	for _, c := range cases {
		if err := run(c.o, io.Discard); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestRunTelemetryJSON runs the full telemetry stack on a tiny timed
// workload: span files must be valid JSON, the JSON report must carry the
// build header and the reconciled attribution, and the diffable text report
// must land in -attr-out.
func TestRunTelemetryJSON(t *testing.T) {
	dir := t.TempDir()
	o := timedRun()
	o.jsonOut = true
	o.attr = true
	o.attrOut = filepath.Join(dir, "attr.txt")
	o.traceSpans = filepath.Join(dir, "spans.otlp.json")
	o.spanChrome = filepath.Join(dir, "spans.chrome.json")
	o.spanEvery = 64
	var out bytes.Buffer
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}

	var res report.Results
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("JSON report: %v", err)
	}
	if res.Build == nil || res.Build.GoVersion == "" {
		t.Fatal("JSON report missing build info")
	}
	if res.Attribution == nil || res.Attribution.Refs == 0 {
		t.Fatalf("JSON report missing attribution: %+v", res.Attribution)
	}
	if res.Attribution.TotalCycles == 0 {
		t.Fatal("attribution counted no cycles")
	}

	attrText, err := os.ReadFile(o.attrOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(attrText), "cycle attribution:") {
		t.Fatalf("-attr-out content:\n%s", attrText)
	}

	for _, span := range []string{o.traceSpans, o.spanChrome} {
		data, err := os.ReadFile(span)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s is not valid JSON: %v", span, err)
		}
	}
}

// TestRunInjectedViolation is the flight-recorder acceptance path: a run
// with a synthetic violation must fail, and the recorder must leave a
// parseable bundle with the event ring and the machine snapshot behind.
func TestRunInjectedViolation(t *testing.T) {
	dir := t.TempDir()
	o := timedRun()
	o.audit = true
	o.injectViolation = true
	o.flightrec = filepath.Join(dir, "fr")
	if err := run(o, io.Discard); err == nil {
		t.Fatal("injected violation must fail the run")
	}
	bundles, err := filepath.Glob(filepath.Join(o.flightrec, "flightrec-*-audit-violation.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles: %v, %v", bundles, err)
	}
	b, err := telemetry.ReadBundle(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Violations) != 1 || b.Violations[0].Location != "injected" {
		t.Fatalf("violations: %+v", b.Violations)
	}
	if b.Snapshot == nil || len(b.Snapshot.CPUs) == 0 {
		t.Fatal("bundle missing machine snapshot")
	}
	if len(b.Events) == 0 {
		t.Fatal("bundle missing event ring")
	}
	var buf bytes.Buffer
	if err := printBundle(&buf, bundles[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trigger=audit-violation") {
		t.Fatalf("-verify-bundle output:\n%s", buf.String())
	}
	if err := printBundle(io.Discard, filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("-verify-bundle on a missing file must error")
	}
}
