package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"16K", 16 << 10}, {"256k", 256 << 10}, {"2M", 2 << 20},
		{"512", 512}, {" 4K ", 4 << 10},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "K", "16Q", "-4K", "4.5K"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): want error", bad)
		}
	}
}

func TestParseOrg(t *testing.T) {
	cases := map[string]system.Organization{
		"vr": system.VR, "VR": system.VR,
		"rr": system.RRInclusion, "rrincl": system.RRInclusion,
		"rrnoincl": system.RRNoInclusion, "noincl": system.RRNoInclusion,
	}
	for in, want := range cases {
		got, err := parseOrg(in)
		if err != nil || got != want {
			t.Errorf("parseOrg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseOrg("bogus"); err == nil {
		t.Error("parseOrg(bogus): want error")
	}
}

func TestRunPreset(t *testing.T) {
	if err := run("pops", "", "", "vr", "4K", "64K", 16, 32, 1, 1,
		false, 0, 0.001, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPresetJSON(t *testing.T) {
	if err := run("thor", "", "", "rr", "4K", "64K", 16, 32, 1, 1,
		false, 0, 0.001, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	cfg := tracegen.AbaqusLike().Scaled(0.001)
	gen, err := tracegen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f)
	for {
		ref, err := gen.Next()
		if err != nil {
			break
		}
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("", path, "abaqus", "vr", "4K", "64K", 16, 32, 1, 1,
		false, 0, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		do   func() error
	}{
		{"both inputs", func() error {
			return run("pops", "x.trc", "", "vr", "4K", "64K", 16, 32, 1, 1, false, 0, 1, false)
		}},
		{"no inputs", func() error {
			return run("", "", "", "vr", "4K", "64K", 16, 32, 1, 1, false, 0, 1, false)
		}},
		{"bad org", func() error {
			return run("pops", "", "", "zz", "4K", "64K", 16, 32, 1, 1, false, 0, 0.001, false)
		}},
		{"bad size", func() error {
			return run("pops", "", "", "vr", "4Q", "64K", 16, 32, 1, 1, false, 0, 0.001, false)
		}},
		{"bad preset", func() error {
			return run("nope", "", "", "vr", "4K", "64K", 16, 32, 1, 1, false, 0, 0.001, false)
		}},
		{"missing trace file", func() error {
			return run("", "/nonexistent/x.trc", "", "vr", "4K", "64K", 16, 32, 1, 1, false, 0, 1, false)
		}},
		{"bad geometry", func() error {
			return run("pops", "", "", "vr", "4K", "64K", 100, 32, 1, 1, false, 0, 0.001, false)
		}},
	}
	for _, c := range cases {
		if err := c.do(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare("pops", "4K", "64K", 16, 32, 1, 1, 0, 0.001); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompareErrors(t *testing.T) {
	if err := runCompare("", "4K", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("compare without preset accepted")
	}
	if err := runCompare("nope", "4K", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := runCompare("pops", "4Q", "64K", 16, 32, 1, 1, 0, 1); err == nil {
		t.Error("bad size accepted")
	}
}
