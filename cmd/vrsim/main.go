// Command vrsim runs a workload through a configured cache hierarchy and
// prints the statistics the paper's evaluation is built on.
//
// Usage:
//
//	vrsim -preset pops -org vr -l1 16K -l2 256K
//	vrsim -trace pops.trc -trace-preset pops -cpus 4 -org rr
//	vrsim -preset abaqus -org vr -split -scale 0.1
//
// When replaying a saved trace produced by cmd/tracegen, pass the same
// preset via -trace-preset so the shared-segment mappings (the synonym
// source) are reconstructed identically.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/cycles"
	"repro/internal/monitor"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/timemodel"
	"repro/internal/trace"
	"repro/internal/tracegen"
)

// options collects every knob of a single-machine run.
type options struct {
	preset      string
	traceFile   string
	tracePreset string
	org         string
	l1, l2      string
	b1, b2      uint64
	a1, a2      int
	split       bool
	cpus        int
	scale       float64
	jsonOut     bool
	victim      int // victim cache entries between the levels (0 = none)
	rltEntries  int // reverse-lookup table entries for -org rlt (0 = auto)

	events       bool   // stream the event log to stderr
	eventsFilter string // comma-separated kinds/categories for -events
	chromeTrace  string // write a Chrome trace_event JSON file
	metricsEvery uint64 // collect windowed metrics every N references

	audit      bool   // verify structural invariants after the run
	auditEvery uint64 // also audit every N references (implies audit)
	snapshot   string // write the final state snapshot to this file
	httpAddr   string // serve live monitoring endpoints on this address
	hist       bool   // collect per-reference latency histograms (-timed)

	timed      bool   // attach the cycle engine and measure access times
	t1, t2, tm uint64 // service latencies, cycles
	tVictim    uint64 // victim-cache hit time, cycles (0 = same as t2)
	tlbPenalty uint64 // extra cycles per TLB miss
	ctxCost    uint64 // flush cost per context switch
	busMemOcc  uint64 // bus occupancy per memory fill transaction
	busCtrlOcc uint64 // bus occupancy per invalidate/update broadcast
	busWBOcc   uint64 // bus occupancy per background write-back
	contention bool   // charge bus queueing delay to the requester

	checkpointFile string // save a checkpoint here after -checkpoint-at records
	checkpointAt   uint64 // trace records to run before saving
	restoreFile    string // resume a run from this checkpoint
	shards         int    // time-sharded run with this many windows
	shardMode      string // exact | approx
	warmup         uint64 // approximate-shard warm-up, references

	traceSpans      string // write sampled causal spans as an OTLP-style JSON file (-timed)
	spanChrome      string // write sampled causal spans as nested Chrome trace events (-timed)
	spanEvery       uint64 // span sampling interval, references
	flightrec       string // arm the flight recorder, bundles into this directory
	flightrecLat    uint64 // also dump when an access takes this many cycles (-timed)
	flightrecEvents int    // flight-recorder ring size per CPU
	attr            bool   // cycle-attribution profile (-timed)
	attrOut         string // also write the attribution text report here ("-" = stdout)
	attrTopK        int    // heavy-hitter sketch size
	injectViolation bool   // inject a synthetic audit violation (CI smoke)
}

// telemetryActive reports whether any flag needs the telemetry layer (and
// therefore an event probe).
func (o options) telemetryActive() bool {
	return o.traceSpans != "" || o.spanChrome != "" || o.attr ||
		o.flightrec != "" || o.flightrecLat > 0
}

// cycleParams assembles the engine's latency inputs from the flags.
func (o options) cycleParams() cycles.Params {
	return cycles.Params{
		T1: o.t1, T2: o.t2, TM: o.tm,
		TVictim:        o.tVictim,
		TLBMissPenalty: o.tlbPenalty,
		CtxSwitchCost:  o.ctxCost,
		BusMemOcc:      o.busMemOcc,
		BusCtrlOcc:     o.busCtrlOcc,
		BusWBOcc:       o.busWBOcc,
		Contention:     o.contention,
	}
}

func main() {
	var o options
	flag.StringVar(&o.preset, "preset", "", "generate and run a workload preset (pops, thor, abaqus)")
	flag.StringVar(&o.traceFile, "trace", "", "replay a binary trace file instead of generating")
	flag.StringVar(&o.tracePreset, "trace-preset", "", "preset whose shared mappings the trace was generated with")
	flag.StringVar(&o.org, "org", "vr", "organization: vr, rr, rrnoincl, rlt, vr-wt, rr-wt")
	flag.StringVar(&o.l1, "l1", "16K", "first-level cache size")
	flag.StringVar(&o.l2, "l2", "256K", "second-level cache size")
	flag.Uint64Var(&o.b1, "b1", 16, "first-level block size")
	flag.Uint64Var(&o.b2, "b2", 32, "second-level block size")
	flag.IntVar(&o.a1, "a1", 1, "first-level associativity")
	flag.IntVar(&o.a2, "a2", 1, "second-level associativity")
	flag.BoolVar(&o.split, "split", false, "split the first level into I and D caches")
	flag.IntVar(&o.cpus, "cpus", 0, "CPU count (default: from preset)")
	flag.Float64Var(&o.scale, "scale", 1.0, "preset trace length scale factor")
	flag.IntVar(&o.victim, "victim", 0, "victim cache entries between the levels (0 = none)")
	flag.IntVar(&o.rltEntries, "rlt-entries", 0, "reverse-lookup table entries for -org rlt (0 = half the L1 lines)")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON instead of text")
	flag.BoolVar(&o.events, "events", false, "stream the event log to stderr")
	flag.StringVar(&o.eventsFilter, "events-filter", "",
		"comma-separated event kinds or categories to keep with -events (e.g. synonym,coherence)")
	flag.StringVar(&o.chromeTrace, "chrome-trace", "",
		"write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	flag.Uint64Var(&o.metricsEvery, "metrics-every", 0,
		"report windowed metrics every N references (text: printed live; -json: embedded)")
	flag.BoolVar(&o.audit, "audit", false,
		"verify structural invariants after the run (non-zero exit on violation)")
	flag.Uint64Var(&o.auditEvery, "audit-every", 0,
		"also audit every N references while running (implies -audit)")
	flag.StringVar(&o.snapshot, "snapshot", "",
		"write the final machine-state snapshot (diffable JSON) to this file")
	flag.StringVar(&o.httpAddr, "http", "",
		"serve live monitoring endpoints on this address while running (e.g. 127.0.0.1:8080)")
	flag.BoolVar(&o.hist, "hist", false,
		"collect per-reference latency histograms (requires -timed)")
	flag.BoolVar(&o.timed, "timed", false, "measure access times with the cycle engine")
	flag.Uint64Var(&o.t1, "t1", 1, "first-level hit time, cycles (-timed)")
	flag.Uint64Var(&o.t2, "t2", 4, "second-level hit time, cycles (-timed)")
	flag.Uint64Var(&o.tm, "tm", 20, "memory time, cycles (-timed)")
	flag.Uint64Var(&o.tVictim, "tvictim", 0, "victim-cache hit time, cycles; 0 = same as -t2 (-timed)")
	flag.Uint64Var(&o.tlbPenalty, "tlb-penalty", 0, "extra cycles per TLB miss (-timed)")
	flag.Uint64Var(&o.ctxCost, "ctx-cost", 0, "flush cost per context switch, cycles (-timed)")
	flag.Uint64Var(&o.busMemOcc, "bus-occ", 0, "bus occupancy per memory fill, cycles (-timed)")
	flag.Uint64Var(&o.busCtrlOcc, "bus-ctrl-occ", 0, "bus occupancy per invalidate/update, cycles (-timed)")
	flag.Uint64Var(&o.busWBOcc, "bus-wb-occ", 0, "bus occupancy per write-back, cycles (-timed)")
	flag.BoolVar(&o.contention, "contention", true, "charge bus queueing to the requester (-timed)")
	flag.StringVar(&o.checkpointFile, "checkpoint", "",
		"save a checkpoint to this file after -checkpoint-at records and exit")
	flag.Uint64Var(&o.checkpointAt, "checkpoint-at", 0,
		"trace records to simulate before saving the -checkpoint file")
	flag.StringVar(&o.restoreFile, "restore", "", "resume the run from this checkpoint file")
	flag.IntVar(&o.shards, "shards", 0, "split the run into this many time shards and simulate them in parallel")
	flag.StringVar(&o.shardMode, "shard-mode", "approx",
		"sharded-run mode: approx (warm-up windows) or exact (checkpoint-verified)")
	flag.Uint64Var(&o.warmup, "warmup", 65536, "warm-up references per approximate shard (-shards)")
	flag.StringVar(&o.traceSpans, "trace-spans", "",
		"write sampled causal span trees to this OTLP-style JSON file (requires -timed)")
	flag.StringVar(&o.spanChrome, "trace-spans-chrome", "",
		"write sampled causal span trees as nested Chrome trace events (requires -timed)")
	flag.Uint64Var(&o.spanEvery, "span-every", telemetry.DefaultSpanSample,
		"sample one reference in every N for span tracing")
	flag.StringVar(&o.flightrec, "flightrec", "",
		"arm the flight recorder: write post-mortem bundles into this directory")
	flag.Uint64Var(&o.flightrecLat, "flightrec-latency", 0,
		"also dump a bundle when a reference takes this many cycles (requires -timed)")
	flag.IntVar(&o.flightrecEvents, "flightrec-events", telemetry.DefaultRecEventsPerCPU,
		"flight-recorder ring size, events per CPU")
	flag.BoolVar(&o.attr, "attr", false,
		"profile cycle attribution by mechanism and heavy hitters (requires -timed)")
	flag.StringVar(&o.attrOut, "attr-out", "",
		"also write the attribution text report to this file (\"-\" = stdout)")
	flag.IntVar(&o.attrTopK, "attr-topk", telemetry.DefaultAttrTopK,
		"heavy-hitter sketch size for -attr")
	flag.BoolVar(&o.injectViolation, "inject-violation", false,
		"inject one synthetic audit violation (exercises the failure path; requires -audit)")
	compare := flag.Bool("compare", false, "run every organization on the same workload and compare")
	version := flag.Bool("version", false, "print build information and exit")
	verifyBundle := flag.String("verify-bundle", "", "parse a flight-recorder bundle file, print its summary, and exit")
	flag.Parse()

	if *version {
		fmt.Println("vrsim", telemetry.Build())
		return
	}
	if *verifyBundle != "" {
		if err := printBundle(os.Stdout, *verifyBundle); err != nil {
			fmt.Fprintln(os.Stderr, "vrsim:", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		if err := runCompare(o); err != nil {
			fmt.Fprintln(os.Stderr, "vrsim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vrsim:", err)
		os.Exit(1)
	}
}

// runCompare runs the identical workload under every organization — the
// paper's three, the write-through first-level variants, and the
// reverse-lookup synonym table — and prints the headline comparison
// columns. -victim adds a victim cache to every row.
func runCompare(o options) error {
	if o.preset == "" {
		return fmt.Errorf("-compare requires -preset")
	}
	l1Size, err := parseSize(o.l1)
	if err != nil {
		return err
	}
	l2Size, err := parseSize(o.l2)
	if err != nil {
		return err
	}
	cfg, err := tracegen.PresetByName(o.preset)
	if err != nil {
		return err
	}
	if o.scale != 1 {
		cfg = cfg.Scaled(o.scale)
	}
	cpus := o.cpus
	if cpus == 0 {
		cpus = cfg.CPUs
	}
	fmt.Printf("%-13s %-7s %-7s %-12s %-12s %-14s %-10s %s\n",
		"organization", "h1", "h2", "TLB lookups", "writebacks", "msgs to L1", "vic hits", "Tacc(t2=4t1)")
	for _, spec := range []string{"vr", "rr", "rrnoincl", "vr-wt", "rr-wt", "rlt"} {
		org, writeThrough, err := parseOrg(spec)
		if err != nil {
			return err
		}
		sc := system.Config{
			CPUs:           cpus,
			Organization:   org,
			PageSize:       cfg.PageSize,
			L1:             cache.Geometry{Size: l1Size, Block: o.b1, Assoc: o.a1},
			L2:             cache.Geometry{Size: l2Size, Block: o.b2, Assoc: o.a2},
			L1WriteThrough: writeThrough,
			VictimEntries:  o.victim,
			RLTEntries:     o.rltEntries,
		}
		if org != system.VRRLT {
			sc.RLTEntries = 0
		}
		sys, err := system.New(sc)
		if err != nil {
			return err
		}
		if err := cfg.SetupSharedMappings(sys.MMU()); err != nil {
			return err
		}
		gen, err := tracegen.New(cfg)
		if err != nil {
			return err
		}
		if err := sys.Run(gen); err != nil {
			return err
		}
		agg := sys.Aggregate()
		var tlbLookups, wbs, msgs, vhits uint64
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			st := sys.Stats(cpu)
			tlbLookups += st.TLB.Hits + st.TLB.Misses
			wbs += st.WriteBacks
			msgs += st.Coherence.Total()
			vhits += st.VictimHits
		}
		tacc := timemodel.AccessTime(timemodel.DefaultParams(agg.H1, agg.H2))
		label := spec
		if spec == "vr" || spec == "rr" || spec == "rrnoincl" {
			label = fmt.Sprint(org)
		}
		fmt.Printf("%-13s %-7.3f %-7.3f %-12d %-12d %-14d %-10d %.3f\n",
			label, agg.H1, agg.H2, tlbLookups, wbs, msgs, vhits, tacc)
	}
	return nil
}

func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// parseOrg maps an -org spelling to the organization plus the orthogonal
// write-through first-level policy ("vr-wt", "rr-wt").
func parseOrg(s string) (org system.Organization, writeThrough bool, err error) {
	switch strings.ToLower(s) {
	case "vr":
		return system.VR, false, nil
	case "rr", "rrincl":
		return system.RRInclusion, false, nil
	case "rrnoincl", "noincl":
		return system.RRNoInclusion, false, nil
	case "rlt":
		return system.VRRLT, false, nil
	case "vr-wt":
		return system.VR, true, nil
	case "rr-wt":
		return system.RRInclusion, true, nil
	default:
		return 0, false, fmt.Errorf("unknown organization %q (vr, rr, rrnoincl, rlt, vr-wt, rr-wt)", s)
	}
}

// buildProbe assembles the observability layer requested on the command
// line; it returns a nil probe (zero overhead) when no flag asks for one.
// Live window lines go to stdout so they share the report's writer (tests
// capture both), never interleaving with -json, which suppresses them.
func buildProbe(o options, stdout io.Writer) (*probe.Probe, *probe.Windows, error) {
	if !o.events && o.chromeTrace == "" && o.metricsEvery == 0 {
		if o.eventsFilter != "" {
			return nil, nil, fmt.Errorf("-events-filter requires -events")
		}
		return nil, nil, nil
	}
	pr := probe.New(0)
	if o.events {
		filter, err := probe.ParseFilter(o.eventsFilter)
		if err != nil {
			return nil, nil, err
		}
		pr.AddSink(probe.NewLog(os.Stderr, filter))
	} else if o.eventsFilter != "" {
		return nil, nil, fmt.Errorf("-events-filter requires -events")
	}
	if o.chromeTrace != "" {
		f, err := os.Create(o.chromeTrace)
		if err != nil {
			return nil, nil, err
		}
		pr.AddSink(probe.NewChromeTrace(f))
	}
	var windows *probe.Windows
	if o.metricsEvery > 0 {
		windows = probe.NewWindows(o.metricsEvery)
		if !o.jsonOut {
			windows.OnClose = func(w probe.WindowMetrics) {
				fmt.Fprintf(stdout, "refs %d-%d: h1 %.3f, h2 %.3f, syn/ref %.5f, bus/ref %.3f, coh->L1 %d\n",
					w.FirstRef, w.LastRef, w.L1Ratio(), w.L2Ratio(),
					w.SynonymRate(), w.BusOccupancy(), w.CohToL1)
			}
		}
		pr.AddSink(windows)
	}
	return pr, windows, nil
}

func run(o options, stdout io.Writer) error {
	org, writeThrough, err := parseOrg(o.org)
	if err != nil {
		return err
	}
	if o.rltEntries != 0 && org != system.VRRLT {
		return fmt.Errorf("-rlt-entries requires -org rlt")
	}
	l1Size, err := parseSize(o.l1)
	if err != nil {
		return err
	}
	l2Size, err := parseSize(o.l2)
	if err != nil {
		return err
	}
	pr, windows, err := buildProbe(o, stdout)
	if err != nil {
		return err
	}
	if pr == nil && o.telemetryActive() {
		// The telemetry layer rides the probe event stream; arm a probe
		// even when no event flag asked for one.
		pr = probe.New(0)
	}
	if err := validateTelemetryFlags(o); err != nil {
		return err
	}
	var eng *cycles.Engine
	if o.timed {
		if eng, err = cycles.New(o.cycleParams(), pr); err != nil {
			return err
		}
	} else if p := o.cycleParams(); p != (cycles.Params{T1: 1, T2: 4, TM: 20, Contention: true}) && p != (cycles.Params{}) {
		// A latency flag moved off its default without -timed: the value
		// would be silently ignored, so reject the combination. The zero
		// struct is also accepted (options built without flag parsing).
		return fmt.Errorf("latency flags require -timed")
	}
	if o.hist && !o.timed {
		return fmt.Errorf("-hist requires -timed")
	}
	if err := validateCheckpointFlags(o); err != nil {
		return err
	}
	var aud *audit.Auditor
	if o.audit || o.auditEvery > 0 {
		aud = audit.New(o.auditEvery)
	}

	var reader trace.Reader
	var wlCfg *tracegen.Config
	switch {
	case o.preset != "" && o.traceFile != "":
		return fmt.Errorf("-preset and -trace are mutually exclusive")
	case o.preset != "":
		cfg, err := tracegen.PresetByName(o.preset)
		if err != nil {
			return err
		}
		if o.scale != 1 {
			cfg = cfg.Scaled(o.scale)
		}
		gen, err := tracegen.New(cfg)
		if err != nil {
			return err
		}
		reader, wlCfg = gen, &cfg
	case o.traceFile != "":
		f, err := os.Open(o.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		reader, err = trace.OpenBinary(f)
		if err != nil {
			return err
		}
		if o.tracePreset != "" {
			cfg, err := tracegen.PresetByName(o.tracePreset)
			if err != nil {
				return err
			}
			wlCfg = &cfg
		}
	default:
		return fmt.Errorf("one of -preset or -trace is required")
	}

	cpus := o.cpus
	if cpus == 0 {
		if wlCfg != nil {
			cpus = wlCfg.CPUs
		} else {
			cpus = 1
		}
	}
	if o.hist {
		eng.SetLatencies(monitor.NewLatencies(cpus))
	}
	sc := system.Config{
		CPUs:           cpus,
		Organization:   org,
		L1:             cache.Geometry{Size: l1Size, Block: o.b1, Assoc: o.a1},
		Split:          o.split,
		L2:             cache.Geometry{Size: l2Size, Block: o.b2, Assoc: o.a2},
		L1WriteThrough: writeThrough,
		VictimEntries:  o.victim,
		RLTEntries:     o.rltEntries,
		Probe:          pr,
		Cycles:         eng,
		Audit:          aud,
	}
	if wlCfg != nil {
		sc.PageSize = wlCfg.PageSize
	}
	if o.shards > 0 {
		return runSharded(o, stdout, sc, *wlCfg)
	}
	sys, err := system.New(sc)
	if err != nil {
		return err
	}
	if wlCfg != nil {
		if err := wlCfg.SetupSharedMappings(sys.MMU()); err != nil {
			return err
		}
	}
	if o.checkpointFile != "" {
		n, err := sys.RunRecords(reader, o.checkpointAt)
		if err != nil {
			return err
		}
		if n < o.checkpointAt {
			return fmt.Errorf("trace ended after %d records; cannot checkpoint at %d", n, o.checkpointAt)
		}
		ck, err := checkpoint.Capture(sys, runSignature(sc, wlCfg, o), n)
		if err != nil {
			return err
		}
		if err := checkpoint.WriteFile(o.checkpointFile, ck); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "checkpoint: %d records saved to %s\n", n, o.checkpointFile)
		return nil
	}
	if o.restoreFile != "" {
		ck, err := checkpoint.ReadFile(o.restoreFile)
		if err != nil {
			return err
		}
		if err := checkpoint.Restore(sys, ck, runSignature(sc, wlCfg, o)); err != nil {
			return err
		}
		// The fresh generator built above replays from record zero; skip it
		// forward to the checkpoint's cursor and continue from there.
		fresh := reader
		if reader, err = checkpoint.ResumeReader(func() (trace.Reader, error) { return fresh, nil }, ck); err != nil {
			return err
		}
	}

	// The telemetry layer (ISSUE 6): span tracer, cycle-attribution
	// profiler, and flight recorder, all riding the probe stream.
	var tracer *telemetry.Tracer
	if o.traceSpans != "" || o.spanChrome != "" {
		var exps []telemetry.SpanExporter
		if o.traceSpans != "" {
			f, err := os.Create(o.traceSpans)
			if err != nil {
				return err
			}
			exps = append(exps, telemetry.NewOTLPWriter(f))
		}
		if o.spanChrome != "" {
			f, err := os.Create(o.spanChrome)
			if err != nil {
				return err
			}
			exps = append(exps, telemetry.NewChromeSpanWriter(f))
		}
		tracer = telemetry.NewTracer(o.spanEvery, exps...)
		pr.AddSink(tracer)
	}
	var attrProf *telemetry.Attribution
	if o.attr {
		mc := sys.Config()
		attrProf = telemetry.NewAttribution(telemetry.AttrConfig{
			TopK: o.attrTopK, PageSize: mc.PageSize,
			L2Sets: mc.L2.Sets(), L2Block: mc.L2.Block,
		})
		pr.AddSink(attrProf)
	}
	var rec *telemetry.Recorder
	if o.flightrec != "" || o.flightrecLat > 0 {
		rec = telemetry.NewRecorder(telemetry.RecorderConfig{
			Dir:              o.flightrec,
			EventsPerCPU:     o.flightrecEvents,
			LatencyThreshold: o.flightrecLat,
			Label: fmt.Sprintf("%v %dcpu l1=%v l2=%v",
				sc.Organization, sc.CPUs, sc.L1, sc.L2),
			Snapshot: sys.AuditSnapshot,
			Probe:    pr,
		})
		pr.AddSink(rec)
		aud.AddOnAudit(rec.OnAudit)
	}
	if o.injectViolation {
		if aud == nil {
			return fmt.Errorf("-inject-violation requires -audit or -audit-every")
		}
		aud.InjectOnce(audit.Violation{
			Invariant: audit.InvInclusion, CPU: -1, Location: "injected",
			Detail: "synthetic violation injected by -inject-violation",
		})
	}

	// Live monitoring: the server publishes a fresh state copy at startup,
	// at every closed metrics window, and once more after the run.
	var srv *monitor.Server
	var lastWindow *probe.WindowMetrics
	publish := func() {
		st := monitor.State{Refs: sys.Refs(), Window: lastWindow}
		if pr != nil {
			st.Events = pr.Counts().Map()
		}
		if eng != nil {
			st.Latencies = eng.Latencies().Clone()
		}
		st.Audits, st.Violations = aud.Audits(), aud.Total()
		if attrProf != nil {
			rep := attrProf.Report()
			st.Blame, st.TopK = rep.BlameMetrics(), rep.TopMetrics()
		}
		if rec != nil {
			st.FlightDumps = rec.Dumps()
		}
		snap := sys.AuditSnapshot()
		st.Occupancy = monitor.Occupancy(snap)
		var buf bytes.Buffer
		if err := snap.WriteJSON(&buf); err == nil {
			st.Snapshot = buf.Bytes()
		}
		srv.Publish(st)
	}
	if o.httpAddr != "" {
		if srv, err = monitor.Start(o.httpAddr); err != nil {
			return err
		}
		defer srv.Close()
		if rec != nil {
			srv.SetFlightDump(func() ([]byte, error) {
				return rec.RequestDump("http /flightrec", 5*time.Second)
			})
		}
		fmt.Fprintf(os.Stderr, "vrsim: monitoring on http://%s\n", srv.Addr())
		if windows != nil {
			prev := windows.OnClose
			windows.OnClose = func(wm probe.WindowMetrics) {
				if prev != nil {
					prev(wm)
				}
				wcopy := wm
				lastWindow = &wcopy
				publish()
			}
		}
		publish()
	}

	if err := sys.Run(reader); err != nil {
		pr.Close()
		return err
	}
	// Always finish with an on-demand audit so -audit alone (no period)
	// still checks the final state. It runs before the probe closes so an
	// armed flight recorder can flush the stream and bundle the events
	// leading up to any final-state violation.
	if aud != nil {
		aud.Audit(sys)
	}
	if err := pr.Close(); err != nil {
		return err
	}
	if rec != nil && rec.Err() != nil {
		return fmt.Errorf("flight recorder: %w", rec.Err())
	}
	if o.snapshot != "" {
		f, err := os.Create(o.snapshot)
		if err != nil {
			return err
		}
		if err := sys.AuditSnapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if srv != nil {
		publish()
	}
	var attrRep *telemetry.AttributionReport
	if attrProf != nil {
		// The blame split must agree with the engine's books to the cycle;
		// a mismatch is a bug worth failing the run over.
		if err := attrProf.Reconcile(eng); err != nil {
			return err
		}
		attrRep = attrProf.Report()
	}
	if o.jsonOut {
		res := report.FromSystem(sys, sc)
		if windows != nil {
			res.AddWindows(windows.Done())
		}
		res.Attribution = attrRep
		if err := res.WriteJSON(stdout); err != nil {
			return err
		}
	} else {
		printReport(stdout, sys, sc)
		if attrRep != nil && o.attrOut != "-" {
			if err := attrRep.WriteText(stdout); err != nil {
				return err
			}
		}
	}
	if attrRep != nil && o.attrOut != "" {
		if err := writeAttrText(o.attrOut, attrRep, stdout); err != nil {
			return err
		}
	}
	if n := aud.Total(); n > 0 {
		return fmt.Errorf("audit: %d violation(s) across %d audits", n, aud.Audits())
	}
	return nil
}

// writeAttrText writes the diffable attribution text report to path ("-"
// selects stdout).
func writeAttrText(path string, rep *telemetry.AttributionReport, stdout io.Writer) error {
	if path == "-" {
		return rep.WriteText(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printBundle summarizes a flight-recorder bundle (-verify-bundle): it
// fails on unparseable files, so CI can assert a dump is well-formed.
func printBundle(w io.Writer, path string) error {
	b, err := telemetry.ReadBundle(path)
	if err != nil {
		return err
	}
	snap := "no"
	if b.Snapshot != nil {
		snap = fmt.Sprintf("yes (%d CPUs)", len(b.Snapshot.CPUs))
	}
	fmt.Fprintf(w, "bundle: trigger=%s ref=%d events=%d violations=%d snapshot=%s\n",
		b.Trigger, b.Ref, len(b.Events), len(b.Violations), snap)
	fmt.Fprintf(w, "build:  %s\n", b.Build)
	if b.Label != "" {
		fmt.Fprintf(w, "label:  %s\n", b.Label)
	}
	if b.Detail != "" {
		fmt.Fprintf(w, "detail: %s\n", b.Detail)
	}
	return nil
}

// validateTelemetryFlags rejects telemetry flag combinations that cannot
// work: span tracing, attribution and the latency tripwire all consume the
// cycle engine's timing events, so they need -timed.
func validateTelemetryFlags(o options) error {
	if !o.timed {
		switch {
		case o.traceSpans != "" || o.spanChrome != "":
			return fmt.Errorf("-trace-spans needs -timed: span boundaries come from the cycle engine")
		case o.attr:
			return fmt.Errorf("-attr needs -timed: attribution splits the measured cycles")
		case o.flightrecLat > 0:
			return fmt.Errorf("-flightrec-latency needs -timed")
		}
	}
	if o.attrOut != "" && !o.attr {
		return fmt.Errorf("-attr-out requires -attr")
	}
	if o.attrOut == "-" && o.jsonOut {
		return fmt.Errorf("-attr-out - would interleave text with -json output; use a file path")
	}
	return nil
}

// validateCheckpointFlags rejects flag combinations the checkpoint and
// shard machinery cannot honor: both need a trace that is regenerable from
// its seed (so only -preset runs qualify), and neither can serialize a
// probe's event cursors, a periodic auditor's schedule, or the monitoring
// server's live state.
func validateCheckpointFlags(o options) error {
	active := 0
	for _, on := range []bool{o.checkpointFile != "", o.restoreFile != "", o.shards > 0} {
		if on {
			active++
		}
	}
	if active == 0 {
		if o.checkpointAt > 0 {
			return fmt.Errorf("-checkpoint-at needs -checkpoint FILE")
		}
		return nil
	}
	if active > 1 {
		return fmt.Errorf("-checkpoint, -restore and -shards are mutually exclusive")
	}
	if o.preset == "" {
		return fmt.Errorf("-checkpoint/-restore/-shards need -preset: the trace must be regenerable from its seed")
	}
	if o.events || o.chromeTrace != "" || o.metricsEvery > 0 {
		return fmt.Errorf("event probes cannot be checkpointed or sharded; drop -events/-chrome-trace/-metrics-every")
	}
	if o.telemetryActive() || o.injectViolation {
		return fmt.Errorf("the telemetry layer cannot be checkpointed or sharded; " +
			"drop -trace-spans/-attr/-flightrec/-inject-violation")
	}
	if o.auditEvery > 0 {
		return fmt.Errorf("periodic audits cannot be checkpointed or sharded; use final-only -audit")
	}
	if o.httpAddr != "" {
		return fmt.Errorf("-http is not supported with -checkpoint/-restore/-shards")
	}
	if o.hist {
		return fmt.Errorf("-hist is not supported with -checkpoint/-restore/-shards")
	}
	if o.checkpointFile != "" && o.checkpointAt == 0 {
		return fmt.Errorf("-checkpoint needs -checkpoint-at N")
	}
	if o.shards > 0 && o.shardMode != "approx" && o.shardMode != "exact" {
		return fmt.Errorf("unknown -shard-mode %q (want approx or exact)", o.shardMode)
	}
	return nil
}

// runSignature fingerprints a deterministic run: the workload generator's
// identity plus every machine parameter that shapes simulated state. A
// checkpoint taken under one signature refuses to restore under another.
func runSignature(sc system.Config, wl *tracegen.Config, o options) string {
	s := sc
	s.Probe, s.Cycles, s.Audit, s.Tracer = nil, nil, nil, nil
	return fmt.Sprintf("%s|machine=%+v|timed=%v|cycles=%+v",
		wl.Signature(), s, o.timed, o.cycleParams())
}

// runSharded splits the preset trace into -shards windows and simulates
// them in parallel, then reports on the stitched result. Approximate mode
// warms each shard with -warmup references; exact mode replays from
// checkpoints of a sequential prior pass and byte-verifies every boundary.
func runSharded(o options, stdout io.Writer, sc system.Config, wl tracegen.Config) error {
	opts := checkpoint.ShardOptions{
		Shards:    o.shards,
		Warmup:    o.warmup,
		TotalRefs: uint64(wl.TotalRefs),
		Exact:     o.shardMode == "exact",
		Signature: runSignature(sc, &wl, o),
		NewSystem: func() (*system.System, error) {
			scc := sc
			scc.Probe, scc.Cycles, scc.Audit = nil, nil, nil
			if o.timed {
				eng, err := cycles.New(o.cycleParams(), nil)
				if err != nil {
					return nil, err
				}
				scc.Cycles = eng
			}
			if o.audit {
				scc.Audit = audit.New(0)
			}
			sys, err := system.New(scc)
			if err != nil {
				return nil, err
			}
			if err := wl.SetupSharedMappings(sys.MMU()); err != nil {
				return nil, err
			}
			return sys, nil
		},
		Source: func() (trace.Reader, error) {
			g, err := tracegen.New(wl)
			if err != nil {
				return nil, err
			}
			return g, nil
		},
	}
	sys, outcome, err := checkpoint.ShardedRun(opts)
	if err != nil {
		return err
	}
	aud := sys.Auditor()
	if aud != nil {
		aud.Audit(sys)
	}
	if o.snapshot != "" {
		f, err := os.Create(o.snapshot)
		if err != nil {
			return err
		}
		if err := sys.AuditSnapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.jsonOut {
		res := report.FromSystem(sys, sc)
		res.Sharding = &report.ShardingInfo{
			Mode:     outcome.Mode,
			Shards:   outcome.Shards,
			Warmup:   outcome.Warmup,
			Verified: outcome.Verified,
		}
		if err := res.WriteJSON(stdout); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "sharded: mode=%s, shards=%d, warmup=%d, verified boundaries=%d\n",
			outcome.Mode, outcome.Shards, outcome.Warmup, outcome.Verified)
		printReport(stdout, sys, sc)
	}
	if aud != nil {
		if n := aud.Total(); n > 0 {
			return fmt.Errorf("audit: %d violation(s) across %d audits", n, aud.Audits())
		}
	}
	return nil
}

func printReport(w io.Writer, sys *system.System, sc system.Config) {
	agg := sys.Aggregate()
	fmt.Fprintf(w, "build:        vrsim %v\n", telemetry.Build())
	fmt.Fprintf(w, "organization: %v, %d CPUs, L1 %v%s, L2 %v\n",
		sc.Organization, sc.CPUs, sc.L1, splitLabel(sc.Split), sc.L2)
	fmt.Fprintf(w, "references:   %d\n", sys.Refs())
	fmt.Fprintf(w, "h1 = %.3f (read %.3f, write %.3f, instr %.3f)\n",
		agg.H1, agg.L1.DataRead, agg.L1.DataWrite, agg.L1.Instr)
	fmt.Fprintf(w, "h2 = %.3f\n", agg.H2)
	bs := sys.Bus().Stats()
	fmt.Fprintf(w, "bus: %d read-miss, %d rmw, %d invalidation (%d cache-supplied)\n",
		bs.Count(bus.Read), bs.Count(bus.ReadMod), bs.Count(bus.Invalidate), bs.Supplies)
	for cpu := 0; cpu < sys.CPUs(); cpu++ {
		st := sys.Stats(cpu)
		fmt.Fprintf(w, "cpu %d: ctxsw %d, writebacks %d (%d swapped), synonyms %d, "+
			"incl-invals %d, tlb-miss %d, coherence msgs to L1: %d",
			cpu, st.CtxSwitches, st.WriteBacks, st.SwappedWriteBacks,
			st.SynonymTotal()-st.Synonyms[0], st.InclusionInvals, st.TLB.Misses,
			st.Coherence.Total())
		if s := st.Coherence.String(); s != "" {
			fmt.Fprintf(w, " (%s)", s)
		}
		if st.VictimInserts > 0 || st.VictimHits > 0 {
			fmt.Fprintf(w, ", victim hits %d / inserts %d", st.VictimHits, st.VictimInserts)
		}
		if st.RLTEvictions > 0 {
			fmt.Fprintf(w, ", rlt evictions %d", st.RLTEvictions)
		}
		fmt.Fprintln(w)
	}
	if p := sys.Probe(); p != nil {
		fmt.Fprintf(w, "probe: %d events\n", p.Counts().Total())
	}
	if eng := sys.Cycles(); eng != nil {
		agg := sys.Aggregate()
		analytic := timemodel.AccessTime(timemodel.Params{
			T1: float64(eng.Params().T1), T2: float64(eng.Params().T2),
			TM: float64(eng.Params().TM), H1: agg.H1, H2: agg.H2,
		})
		fmt.Fprintf(w, "timing: measured Tacc %.4f cycles/ref (analytic %.4f), bus busy %d cycles over %d txns\n",
			eng.Tacc(), analytic, eng.BusBusy(), eng.BusTxns())
		for cpu := 0; cpu < sys.CPUs(); cpu++ {
			at := eng.Agent(cpu)
			fmt.Fprintf(w, "cpu %d: %d cycles / %d refs = %.4f (access %d, tlb %d, bus-wait %d, stall %d, ctx %d)\n",
				cpu, at.Clock, at.Refs, at.Tacc(),
				at.Access, at.TLB, at.BusWait, at.Stall, at.Ctx)
		}
		if eng.Latencies() != nil {
			printHistTable(w, eng.Latencies())
		}
	}
	printAuditSummary(w, sys)
}

// printHistTable renders the machine-wide latency distributions (-hist).
func printHistTable(w io.Writer, lat *monitor.Latencies) {
	sums := report.SummarizeLatencies(lat)
	if len(sums) == 0 {
		return
	}
	fmt.Fprintln(w, "latency distributions (cycles):")
	fmt.Fprintf(w, "%-10s %-10s %-8s %-8s %-8s %-8s %s\n",
		"kind", "count", "mean", "p50", "p95", "p99", "max")
	for _, s := range sums {
		fmt.Fprintf(w, "%-10s %-10d %-8.2f %-8.1f %-8.1f %-8.1f %d\n",
			s.Kind, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
	}
}

// maxPrintedViolations bounds the text report's finding list; the JSON
// report carries the auditor's full retained set.
const maxPrintedViolations = 10

func printAuditSummary(w io.Writer, sys *system.System) {
	aud := sys.Auditor()
	if aud == nil {
		return
	}
	fmt.Fprintf(w, "audit: %d audits, %d violations\n", aud.Audits(), aud.Total())
	for i, v := range aud.Violations() {
		if i == maxPrintedViolations {
			fmt.Fprintf(w, "  ... and %d more\n", len(aud.Violations())-maxPrintedViolations)
			break
		}
		fmt.Fprintf(w, "  %s\n", v)
	}
}

func splitLabel(split bool) string {
	if split {
		return " (split I/D)"
	}
	return ""
}
