package main

// vrsimd top: a live terminal dashboard over one daemon's /fleet and
// per-job /timeseries endpoints. Each frame is one fleet poll plus one
// timeseries poll per displayed job; -once renders a single frame without
// touching the terminal (scripts and CI use it as a fleet snapshot).

import (
	"context"
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/jobs/client"
)

func top(args []string) error {
	fs := flag.NewFlagSet("vrsimd top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	metric := fs.String("metric", "l1ratio", "sparkline metric (l1ratio, l2ratio, synrate, busocc, tacc, ... )")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	points := fs.Int("points", 40, "sparkline width in samples (server downsamples)")
	maxJobs := fs.Int("jobs", 12, "max jobs listed per frame (newest first)")
	once := fs.Bool("once", false, "render one frame and exit")
	fs.Parse(args)

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := client.New(base)
	ctx := context.Background()
	for {
		frame, err := renderFrame(ctx, c, *metric, *points, *maxJobs)
		if err != nil {
			return err
		}
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Clear + home between frames; plain ANSI keeps this dependency-free.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// renderFrame assembles one dashboard frame.
func renderFrame(ctx context.Context, c *client.Client, metric string, points, maxJobs int) (string, error) {
	fv, err := c.Fleet(ctx)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "vrsimd %s — workers %d  queue %d  window %d refs\n",
		c.Base(), fv.Workers, fv.QueueDepth, fv.WindowRefs)
	fmt.Fprintf(&b, "jobs: %d submitted, %d done, %d failed, %d canceled, %d resumed\n",
		fv.Counters.Submitted, fv.Counters.Done, fv.Counters.Failed,
		fv.Counters.Canceled, fv.Counters.Resumed)
	fmt.Fprintf(&b, "queue wait: %s   run time: %s\n\n",
		latencyLine(fv.QueueSeconds), latencyLine(fv.RunSeconds))

	jobsList := fv.Jobs
	if len(jobsList) > maxJobs {
		jobsList = jobsList[len(jobsList)-maxJobs:]
	}
	if len(jobsList) == 0 {
		b.WriteString("(no jobs)\n")
		return b.String(), nil
	}
	fmt.Fprintf(&b, "%-8s %-8s %-9s %9s  %-*s %10s\n",
		"JOB", "KIND", "STATE", "PROGRESS", points, strings.ToUpper(metric), "LATEST")
	for _, st := range jobsList {
		spark, latest := jobSpark(ctx, c, st, metric, points)
		fmt.Fprintf(&b, "%-8s %-8s %-9s %9s  %-*s %10s\n",
			st.ID, st.Kind, st.State, progress(st), points, spark, latest)
	}
	return b.String(), nil
}

func latencyLine(l jobs.LatencySummary) string {
	if l.Count == 0 {
		return "—"
	}
	return fmt.Sprintf("p50 %.3gs p95 %.3gs max %.3gs (n=%d)", l.P50, l.P95, l.Max, l.Count)
}

func progress(st jobs.Status) string {
	if st.TotalRefs == 0 {
		return "—"
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(st.Refs)/float64(st.TotalRefs))
}

// jobSpark fetches the job's downsampled series and renders it as a
// sparkline; fetch errors degrade to an empty cell (the dashboard must
// outlive transient daemon hiccups).
func jobSpark(ctx context.Context, c *client.Client, st jobs.Status, metric string, points int) (spark, latest string) {
	ts, err := c.Timeseries(ctx, st.ID, client.TimeseriesQuery{Metric: metric, Points: points})
	if err != nil || len(ts.Samples) == 0 {
		return "", ""
	}
	vals := make([]float64, len(ts.Samples))
	for i, p := range ts.Samples {
		vals[i] = p.Value
	}
	return sparkline(vals), fmt.Sprintf("%.4g", vals[len(vals)-1])
}

// sparkRunes are the classic eighth-block ramp.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline scales vals into the eighth-block ramp. A flat series renders
// as mid-blocks so it stays visible.
func sparkline(vals []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		i := len(sparkRunes) / 2
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}
