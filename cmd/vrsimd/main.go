// Command vrsimd runs the simulator as a long-lived job service: clients
// POST JSON job configs (run, sweep, or autotune) and fetch JSON reports
// when they finish. Jobs run on a bounded worker pool, checkpoint
// periodically, and survive daemon restarts — reopening the same state
// directory resumes every in-flight job with byte-identical final reports.
//
//	vrsimd serve -http :8080 -state /var/lib/vrsimd
//	vrsimd submit -addr http://127.0.0.1:8080 -config job.json -wait
//
// On SIGINT/SIGTERM the daemon parks in-flight jobs (final checkpoint,
// spec left as running), verifies no worker goroutines leaked, and prints
// "clean shutdown". See DESIGN.md §16 for the lifecycle state machine.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/jobs/client"
)

// newLogger builds the daemon's structured logger on stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "submit":
		err = submit(os.Args[2:])
	case "top":
		err = top(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "vrsimd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vrsimd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  vrsimd serve  -http ADDR -state DIR [-workers N] [-checkpoint-every N]
                [-progress-every N] [-queue-limit N] [-addr-file PATH]
                [-log-format text|json] [-log-level LEVEL]
                [-span-sample N] [-timeseries-retention N]
  vrsimd submit -addr URL (-config FILE | -config -) [-wait] [-report]
  vrsimd top    -addr URL [-metric NAME] [-interval DUR] [-points N] [-once]
`)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("vrsimd serve", flag.ExitOnError)
	httpAddr := fs.String("http", "127.0.0.1:8080", "listen address")
	stateDir := fs.String("state", "", "state directory for specs, checkpoints and reports (required)")
	workers := fs.Int("workers", 0, "worker pool size (default GOMAXPROCS)")
	ckEvery := fs.Int64("checkpoint-every", 0, "checkpoint cadence in trace records (default 200000, negative disables)")
	progEvery := fs.Uint64("progress-every", 0, "progress window size in references (default 20000)")
	queueLimit := fs.Int("queue-limit", 0, "admission queue bound (default 1024)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
	spanSample := fs.Int64("span-sample", 0, "in-sim span sampling interval in references for per-job traces (default 1048576, negative disables)")
	tsRetention := fs.Int("timeseries-retention", 0, "per-job time-series sample cap (default 65536)")
	fs.Parse(args)
	if *stateDir == "" {
		return fmt.Errorf("-state is required")
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	m, err := jobs.Open(jobs.Options{
		Dir:                 *stateDir,
		Workers:             *workers,
		CheckpointEvery:     *ckEvery,
		ProgressEvery:       *progEvery,
		QueueLimit:          *queueLimit,
		Logger:              logger,
		SpanSampleEvery:     *spanSample,
		TimeseriesRetention: *tsRetention,
	})
	if err != nil {
		return err
	}

	srv := jobs.NewServer(m)
	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		m.Close()
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			ln.Close()
			m.Close()
			return err
		}
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Printf("vrsimd: listening on %s, state %s, %d workers\n",
		ln.Addr(), *stateDir, m.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		fmt.Printf("vrsimd: %v — shutting down\n", s)
	case err := <-serveErr:
		m.Close()
		return err
	}

	// Shutdown order: unblock SSE streams, stop the listener, park the
	// worker pool (in-flight jobs write a final checkpoint), then verify
	// nothing survived.
	srv.Close()
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := m.Close(); err != nil {
		return err
	}
	if err := jobs.VerifyNoLeaks(2 * time.Second); err != nil {
		return err
	}
	fmt.Println("vrsimd: clean shutdown")
	return nil
}

func submit(args []string) error {
	fs := flag.NewFlagSet("vrsimd submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	config := fs.String("config", "", `job config file ("-" for stdin, required)`)
	wait := fs.Bool("wait", false, "block until the job finishes and print its final status")
	report := fs.Bool("report", false, "with -wait: print the finished job's report to stdout")
	fs.Parse(args)
	if *config == "" {
		return fmt.Errorf("-config is required")
	}
	var (
		data []byte
		err  error
	)
	if *config == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*config)
	}
	if err != nil {
		return err
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base // accept the bare host:port that -addr-file writes
	}
	ctx := context.Background()
	c := client.New(base)
	st, err := c.Submit(ctx, data)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s)\n", st.ID, st.Kind)
	if !*wait {
		fmt.Println(st.ID)
		return nil
	}
	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %s", st.ID, st.State)
	if st.Error != "" {
		fmt.Fprintf(os.Stderr, " (%s)", st.Error)
	}
	fmt.Fprintln(os.Stderr)
	if st.State != jobs.StateDone {
		return fmt.Errorf("job %s finished %s", st.ID, st.State)
	}
	if *report {
		doc, err := c.Report(ctx, st.ID)
		if err != nil {
			return err
		}
		os.Stdout.Write(doc)
	}
	return nil
}
