// Command experiments regenerates the paper's tables and figures from the
// simulator.
//
// Usage:
//
//	experiments -run all            # every artifact, full trace lengths
//	experiments -run table6,fig6    # selected artifacts
//	experiments -list               # list artifact ids
//	experiments -run table6 -scale 0.1   # 10% trace length for a quick look
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// selectExperiments resolves a -run argument ("all", a comma-separated id
// list, or prefix globs like "timed*") to the experiments to execute, in
// registry order per pattern and without duplicates.
func selectExperiments(run string) ([]experiments.Experiment, error) {
	if run == "all" {
		return experiments.All(), nil
	}
	var selected []experiments.Experiment
	seen := map[string]bool{}
	add := func(e experiments.Experiment) {
		if !seen[e.ID] {
			seen[e.ID] = true
			selected = append(selected, e)
		}
	}
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		if prefix, ok := strings.CutSuffix(id, "*"); ok {
			matched := false
			for _, e := range experiments.All() {
				if strings.HasPrefix(e.ID, prefix) {
					add(e)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("experiments: no experiment matches %q", id)
			}
			continue
		}
		e, err := experiments.ByID(id)
		if err != nil {
			return nil, err
		}
		add(e)
	}
	return selected, nil
}

func main() {
	run := flag.String("run", "", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 1.0, "trace length scale factor (1.0 = paper-sized traces)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"experiments to run concurrently (they are independent; capped at NumCPU)")
	shards := flag.Int("shards", 0,
		"split each sweep's run into this many parallel time shards (approximate; hit ratios agree within ~1e-3)")
	warmup := flag.Uint64("warmup", 65536, "warm-up references per time shard (-shards)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println("experiments", telemetry.Build())
		return
	}
	experiments.SetSharding(*shards, *warmup)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run or -list required (try -run all)")
		os.Exit(2)
	}

	selected, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if err := runAll(selected, *scale, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runAll executes the selected experiments, optionally concurrently (each
// experiment is self-contained: its own machine, MMU and workload). Output
// is buffered per experiment and printed in selection order.
func runAll(selected []experiments.Experiment, scale float64, parallel int) error {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > runtime.NumCPU() {
		parallel = runtime.NumCPU()
	}
	type result struct {
		out  bytes.Buffer
		took time.Duration
		err  error
	}
	fmt.Println("build:", telemetry.Build())
	results := make([]result, len(selected))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, e := range selected {
		wg.Add(1)
		go func(i int, e experiments.Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i].err = e.Run(&results[i].out, scale)
			results[i].took = time.Since(start)
		}(i, e)
	}
	wg.Wait()
	for i, e := range selected {
		fmt.Printf("=== %s: %s (scale %g)\n", e.ID, e.Title, scale)
		os.Stdout.Write(results[i].out.Bytes())
		if results[i].err != nil {
			return fmt.Errorf("%s: %w", e.ID, results[i].err)
		}
		fmt.Printf("--- %s done in %v\n\n", e.ID, results[i].took.Round(time.Millisecond))
	}
	return nil
}
