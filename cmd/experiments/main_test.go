package main

import "testing"

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 20 {
		t.Errorf("all selected only %d experiments", len(got))
	}
}

func TestSelectExperimentsList(t *testing.T) {
	got, err := selectExperiments("table6, fig6")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "table6" || got[1].ID != "fig6" {
		t.Errorf("selected %+v", got)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	if _, err := selectExperiments("table6,bogus"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunAllSequentialAndParallel(t *testing.T) {
	sel, err := selectExperiments("assoc,table5")
	if err != nil {
		t.Fatal(err)
	}
	if err := runAll(sel, 0.001, 1); err != nil {
		t.Fatal(err)
	}
	if err := runAll(sel, 0.001, 4); err != nil {
		t.Fatal(err)
	}
}
