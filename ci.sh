#!/bin/sh
# ci.sh — the checks a change must pass before merging.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchmark smoke (one iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzBinaryRoundTrip$' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz '^FuzzTextParse$' -fuzztime 10s ./internal/trace

# Audit under the race detector: run the full invariant auditor against every
# organization on a real workload and fail on any violation (vrsim exits
# non-zero when the auditor finds one). No -cpus override: the preset trace
# carries its own CPU count.
echo "== invariant audit under race across organizations"
for org in vr rr rrnoincl; do
    go run -race ./cmd/vrsim -preset pops -scale 0.02 -audit -audit-every 1000 -org "$org" > /dev/null
done

echo "== bench guard (sweep throughput vs BENCH_sweep.json baseline)"
go run ./cmd/benchguard

echo "ci: all checks passed"
