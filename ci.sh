#!/bin/sh
# ci.sh — the checks a change must pass before merging.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchmark smoke (one iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzBinaryRoundTrip$' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz '^FuzzTextParse$' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz '^FuzzCheckpointRoundTrip$' -fuzztime 10s ./internal/checkpoint
go test -run '^$' -fuzz '^FuzzJobConfigDecode$' -fuzztime 10s ./internal/jobs

echo "== coverage floors (internal/checkpoint, internal/stats, internal/jobs, internal/tsdb, internal/victim, internal/rlt)"
for pkg in internal/checkpoint internal/stats internal/jobs internal/tsdb internal/victim internal/rlt; do
    pct=$(go test -cover "./$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage: no figure reported for $pkg" >&2
        exit 1
    fi
    if [ "$(printf '%.0f' "$pct")" -lt 70 ]; then
        echo "coverage: $pkg at $pct%, floor is 70%" >&2
        exit 1
    fi
    echo "$pkg: $pct%"
done

# Sharded execution must agree with the sequential run: exact mode is
# byte-identical (every boundary checkpoint-verified inside vrsim), and a
# save/restore split run must reproduce the uninterrupted report exactly.
echo "== checkpoint/shard vs sequential smoke"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/vrsim -preset pops -scale 0.01 -json > "$tmp/seq.json"
go run ./cmd/vrsim -preset pops -scale 0.01 -checkpoint "$tmp/ck.bin" -checkpoint-at 2000 > /dev/null
go run ./cmd/vrsim -preset pops -scale 0.01 -restore "$tmp/ck.bin" -json > "$tmp/restored.json"
cmp "$tmp/seq.json" "$tmp/restored.json"
go run ./cmd/vrsim -preset pops -scale 0.01 -shards 4 -shard-mode exact > /dev/null

# The cross-organization differential harness under the race detector, run
# twice: every synonym strategy (v-pointer, reverse-lookup table, victim
# cache, write-through) must observe identical data behaviour on identical
# reference streams, and the geometry fuzzer must hold the same story across
# random legal shapes.
echo "== cross-organization differential suite under race"
go test -race -count 2 -run 'TestDifferential' ./internal/system
go test -race -count 2 -run 'TestGeometryFuzz|TestVREqualsRR|TestProtocolsEquivalent|TestPIDTagsEquivalent' ./internal/core

# Audit under the race detector: run the full invariant auditor against every
# organization on a real workload and fail on any violation (vrsim exits
# non-zero when the auditor finds one). No -cpus override: the preset trace
# carries its own CPU count.
echo "== invariant audit under race across organizations"
for org in vr rr rrnoincl rlt; do
    go run -race ./cmd/vrsim -preset pops -scale 0.02 -audit -audit-every 1000 -org "$org" > /dev/null
done
# Synonym machinery under audit: a victim cache (exclusivity + containment
# invariants) and a deliberately small reverse-lookup table (reciprocity
# invariant, forced evictions on nearly every fill).
go run -race ./cmd/vrsim -preset pops -scale 0.02 -audit -audit-every 1000 -org vr -victim 4 > /dev/null
go run -race ./cmd/vrsim -preset pops -scale 0.02 -audit -audit-every 1000 -org rlt -rlt-entries 16 -victim 4 > /dev/null

# Telemetry: the tracing/attribution layer under the race detector (its
# on-demand dump path crosses goroutines), then an end-to-end flight-recorder
# smoke — a run with an injected audit violation must exit non-zero and leave
# a parseable post-mortem bundle behind.
echo "== telemetry tests under race + flight recorder smoke"
go test -race ./internal/telemetry
if go run ./cmd/vrsim -preset pops -scale 0.02 -timed -tlb-penalty 8 \
    -audit-every 1000 -inject-violation -flightrec "$tmp/fr" -attr > "$tmp/fr.out" 2>&1; then
    echo "flightrec smoke: injected violation did not fail the run" >&2
    exit 1
fi
bundle=$(ls "$tmp"/fr/flightrec-*-audit-violation.json)
go run ./cmd/vrsim -verify-bundle "$bundle"

# Autotuner soundness under the race detector: a ~60-config search with
# pruning enabled must return exactly the frontier the exhaustive search
# finds (-check-exhaustive re-runs without pruning and compares).
echo "== autotune pruning soundness under race"
# 60 configs: three plain orgs sweep the victim axis, and the rlt
# organization additionally sweeps its table size (non-rlt orgs drop the
# rltEntries != 0 points during expansion).
cat > "$tmp/grammar.json" <<'GRAMMAR'
{
  "organizations": ["vr", "rr", "vr-wt", "rlt"],
  "l1Sizes": [1024, 4096, 8192],
  "l1Assocs": [1],
  "l2Sizes": [65536, 131072],
  "blockRatios": [2],
  "victimEntries": [0, 4],
  "rltEntries": [0, 16]
}
GRAMMAR
go run -race ./cmd/autotune -grammar "$tmp/grammar.json" -preset pops \
    -scale 0.01 -probe-refs 8000 -shards 2 -warmup 1000 -chunk 4 \
    -margin 0.15 -check-exhaustive > "$tmp/autotune.out"
grep -q "margin sound: true" "$tmp/autotune.out"
grep -q "pruning sound" "$tmp/autotune.out"
grep -Eq "pruned [1-9]" "$tmp/autotune.out"

# Job-server smoke: a real daemon on a real socket. Submit a table6-style
# sweep (VR vs RR at the paper's main sizes), verify the report names every
# machine, then walk the observatory surfaces — persisted time-series over
# HTTP (deterministic across reads), the CSV dump, one `top` frame, the
# job-correlated structured JSON log and the OTLP trace file — before
# SIGTERMing the daemon and requiring a clean shutdown (vrsimd checks for
# leaked worker goroutines itself before printing the marker).
echo "== vrsimd job-server smoke"
go build -o "$tmp/vrsimd" ./cmd/vrsimd
"$tmp/vrsimd" serve -http 127.0.0.1:0 -state "$tmp/vrsimd-state" \
    -log-format json -progress-every 5000 \
    -addr-file "$tmp/vrsimd.addr" > "$tmp/vrsimd.log" 2>&1 &
vrsimd_pid=$!
for _ in $(seq 50); do
    [ -s "$tmp/vrsimd.addr" ] && break
    sleep 0.1
done
[ -s "$tmp/vrsimd.addr" ] || { cat "$tmp/vrsimd.log" >&2; exit 1; }
cat > "$tmp/job.json" <<'JOB'
{
  "kind": "sweep", "preset": "pops", "scale": 0.02,
  "machines": [
    {"label": "vr-16K/256K", "org": "vr", "l1Size": 16384, "l2Size": 262144},
    {"label": "rr-16K/256K", "org": "rr", "l1Size": 16384, "l2Size": 262144},
    {"label": "vr-64K/1M",   "org": "vr", "l1Size": 65536, "l2Size": 1048576}
  ]
}
JOB
vrsimd_url="http://$(cat "$tmp/vrsimd.addr")"
"$tmp/vrsimd" submit -addr "$vrsimd_url" \
    -config "$tmp/job.json" -wait -report > "$tmp/job-report.json" 2> "$tmp/submit.err"
cat "$tmp/submit.err" >&2
for label in "vr-16K/256K" "rr-16K/256K" "vr-64K/1M"; do
    grep -q "\"$label\"" "$tmp/job-report.json"
done
grep -q '"references"' "$tmp/job-report.json"

job_id=$(sed -n 's/^submitted \(j[0-9]*\).*/\1/p' "$tmp/submit.err")
[ -n "$job_id" ] || { echo "ci: no job id in submit output" >&2; exit 1; }
# Persisted time-series: samples present, two reads byte-identical, and the
# CSV dump carries the header plus at least one row.
curl -sf "$vrsimd_url/jobs/$job_id/timeseries?metric=busocc" > "$tmp/ts1.json"
curl -sf "$vrsimd_url/jobs/$job_id/timeseries?metric=busocc" > "$tmp/ts2.json"
cmp "$tmp/ts1.json" "$tmp/ts2.json"
grep -q '"startRef"' "$tmp/ts1.json"
curl -sf "$vrsimd_url/jobs/$job_id/timeseries?metric=l1ratio&points=8&format=csv" > "$tmp/ts.csv"
head -1 "$tmp/ts.csv" | grep -q '^seq,'
[ "$(wc -l < "$tmp/ts.csv")" -ge 2 ]
# One dashboard frame over the same endpoints.
"$tmp/vrsimd" top -addr "$vrsimd_url" -metric l1ratio -once > "$tmp/top.out"
grep -q "workers" "$tmp/top.out"
grep -q "$job_id" "$tmp/top.out"
# Structured JSON log correlated by job id, and the job's OTLP trace file.
grep -q "\"job\":\"$job_id\"" "$tmp/vrsimd.log"
[ -s "$tmp/vrsimd-state/$job_id.trace.json" ]
grep -q '"resourceSpans"' "$tmp/vrsimd-state/$job_id.trace.json"
# Queue/run latency histograms registered on the Prometheus surface.
curl -sf "$vrsimd_url/metrics" | grep -q '^vrsimd_job_run_seconds_count'
kill -TERM "$vrsimd_pid"
wait "$vrsimd_pid" || { cat "$tmp/vrsimd.log" >&2; exit 1; }
grep -q "clean shutdown" "$tmp/vrsimd.log"

# Best of 5 runs against the recorded baseline; the loose threshold absorbs
# the noise of a shared single-core container (a real regression is far
# larger than the jitter this floor tolerates).
echo "== bench guard (sweep throughput vs BENCH_sweep.json baseline)"
go run ./cmd/benchguard -count 5 -threshold 0.8

echo "ci: all checks passed"
