#!/bin/sh
# ci.sh — the checks a change must pass before merging.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== benchmark smoke (one iteration each)"
go test -run '^$' -bench . -benchtime 1x ./...

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz '^FuzzBinaryRoundTrip$' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz '^FuzzTextParse$' -fuzztime 10s ./internal/trace

echo "ci: all checks passed"
